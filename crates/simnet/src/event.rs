//! Event-queue implementations: binary heap and calendar queue.
//!
//! The simulator dispatches events in `(time, seq)` order — time first,
//! schedule sequence as the tie-breaker — which makes runs fully
//! deterministic. Two interchangeable priority queues provide that order
//! behind the [`EventQueue`] trait:
//!
//! * [`HeapQueue`] — the classic `BinaryHeap`, `O(log n)` per operation.
//!   Simple and branch-predictable, but at 10k-node scale the heap array
//!   spans megabytes and every sift touches `log n` random cache lines.
//! * [`CalendarQueue`] — a calendar queue (Brown 1988): events hash into
//!   time buckets of an auto-tuned width, giving `O(1)` amortized
//!   enqueue/dequeue with mostly-sequential memory access. Bucket width
//!   and count re-tune from the observed event-time deltas whenever the
//!   queue resizes.
//!
//! Both implementations pop in **bit-identical order**: within a bucket
//! the calendar queue selects the minimum `(time, seq)` pair, so same-tick
//! ties dispatch in schedule order exactly like the heap. The
//! `queue_equivalence` integration test drives both with arbitrary
//! interleaved push/pop sequences and asserts identical pop streams; the
//! simulator exposes the choice through
//! [`SimConfig::with_event_queue`](crate::SimConfig::with_event_queue)
//! and the `EGM_EVENT_QUEUE` environment variable.

use crate::sim::TimerToken;
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::cmp::Ordering;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver a message that survived the network.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// Fire a protocol timer.
    Timer { node: NodeId, tag: u64 },
    /// Fire a cancellable protocol timer; the token is checked against the
    /// live generation at pop time and stale events are dropped before
    /// dispatch.
    CancellableTimer {
        node: NodeId,
        tag: u64,
        token: TimerToken,
    },
    /// Deliver a harness command to a protocol node.
    Command { node: NodeId, value: u64 },
    /// Silence a node (fault injection).
    Silence(NodeId),
    /// Revive a previously silenced node.
    Revive(NodeId),
    /// Set the transit-link degradation state: a latency multiplier and
    /// an extra loss probability applied to cross-domain traffic
    /// (fault injection; `1.0` / `0.0` restores the healthy network).
    Degrade { latency_mult: f64, extra_loss: f64 },
    /// Set a node's processing slowdown: an additive receive-side delay
    /// (fault injection; `ZERO` restores full speed).
    Slowdown { node: NodeId, delay: SimDuration },
}

/// A scheduled item; ordering is by `(time, seq)`, making the simulation
/// fully deterministic. `T` is the event payload (the simulator uses its
/// internal event kind; tests can use anything).
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// Dispatch time.
    pub time: SimTime,
    /// Schedule sequence number — unique, assigned in push order; breaks
    /// same-tick ties.
    pub seq: u64,
    /// The event payload.
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Counters shared by every [`EventQueue`] implementation.
///
/// `pushes`, `pops` and `max_len` are implementation-independent (the
/// equivalence suite asserts they match across queues); the bucket fields
/// describe the calendar queue's current geometry and are zero for the
/// heap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events enqueued over the queue's lifetime.
    pub pushes: u64,
    /// Events dequeued over the queue's lifetime.
    pub pops: u64,
    /// High-water mark of queued events.
    pub max_len: usize,
    /// Calendar only: bucket-array rebuilds (grow, shrink, or re-tune).
    pub resizes: u64,
    /// Calendar only: current number of buckets.
    pub bucket_count: usize,
    /// Calendar only: current bucket width in microseconds (a power of
    /// two, auto-tuned from observed event-time deltas at each resize).
    pub bucket_width_us: u64,
    /// Calendar only: pops that scanned a whole calendar year without
    /// finding an event and fell back to a direct minimum search (the
    /// sparse-queue slow path; frequent hits mean the width is mistuned).
    pub year_scans: u64,
}

/// A deterministic priority queue over [`Scheduled`] items.
///
/// Implementations must pop in strictly increasing `(time, seq)` order.
/// Pushed times must be monotone with respect to pops: an item may never
/// be pushed with a time earlier than the last popped time (the simulator
/// guarantees this — events are always scheduled at or after *now*).
pub trait EventQueue<T> {
    /// Enqueues an item.
    fn push(&mut self, ev: Scheduled<T>);

    /// Pops the earliest item by `(time, seq)`.
    ///
    /// With `bound` set, the pop only happens if the earliest item's time
    /// is `<= bound`; otherwise the queue is left untouched and `None` is
    /// returned — this is how the simulator runs up to a deadline without
    /// a separate peek.
    fn pop_next(&mut self, bound: Option<SimTime>) -> Option<Scheduled<T>>;

    /// Time of the earliest queued item without popping it (the sharded
    /// engine's window planner uses this to size conservative windows).
    fn next_time(&self) -> Option<SimTime>;

    /// Number of queued items.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    fn stats(&self) -> QueueStats;
}

/// The reference implementation: a binary max-heap over reversed
/// `(time, seq)` order.
#[derive(Debug)]
pub struct HeapQueue<T> {
    heap: std::collections::BinaryHeap<Scheduled<T>>,
    stats: QueueStats,
}

impl<T> HeapQueue<T> {
    /// Creates an empty heap with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: std::collections::BinaryHeap::with_capacity(capacity),
            stats: QueueStats::default(),
        }
    }
}

impl<T> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, ev: Scheduled<T>) {
        self.heap.push(ev);
        self.stats.pushes += 1;
        self.stats.max_len = self.stats.max_len.max(self.heap.len());
    }

    fn pop_next(&mut self, bound: Option<SimTime>) -> Option<Scheduled<T>> {
        if let Some(bound) = bound {
            match self.heap.peek() {
                Some(ev) if ev.time <= bound => {}
                _ => return None,
            }
        }
        let ev = self.heap.pop()?;
        self.stats.pops += 1;
        Some(ev)
    }

    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Smallest bucket array (power of two).
const MIN_BUCKETS: usize = 16;
/// Largest bucket array — caps the bucket directory at a few MB.
const MAX_BUCKETS: usize = 1 << 20;
/// Events sampled when re-tuning the bucket width at a resize.
const TUNE_SAMPLES: usize = 64;

/// A calendar queue: `O(1)` amortized push/pop with cache-friendly,
/// fragmentation-free storage.
///
/// Time is divided into *days* (buckets) of `2^shift` microseconds; the
/// bucket directory of `2^k` entries covers one *year*, and later years
/// wrap around. Events live in a single slab (`Vec` of nodes recycled
/// through an intrusive freelist); each bucket is a singly-linked list of
/// slab indices, so a push is one slab write plus one head link — no
/// per-bucket allocations, and a resize merely relinks the slab without
/// moving events.
///
/// A pop scans forward from the current day for the bucket holding the
/// earliest events of the current year, extracts that day's events into
/// the sorted `today` buffer, and drains them back-to-front, which keeps
/// dispatch order bit-identical to the heap's `(time, seq)` order even
/// across massive same-tick ties (the sort pays `O(b log b)` once per day
/// instead of a min-scan per pop). Same-day arrivals while the buffer
/// drains merge in by binary insertion. When a whole year passes without
/// a hit (sparse queue), a direct minimum search over the slab
/// re-synchronizes the calendar.
///
/// The bucket count doubles/halves with occupancy, and each resize
/// re-tunes the bucket width from the observed deltas between queued
/// event times, targeting about one event per day of the current year.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Per-bucket list heads (slab indices; `NIL` for empty).
    heads: Vec<u32>,
    /// Backing storage for queued events; free slots have `ev: None` and
    /// chain through `next` into the freelist.
    slab: Vec<SlabNode<T>>,
    /// Freelist head.
    free: u32,
    /// Events of the active day, sorted by *descending* `(time, seq)` so
    /// the next event to dispatch is `today.last()`. While a day is
    /// active no event inside its window lives in a bucket.
    today: Vec<Scheduled<T>>,
    /// Active day window `[today_start, today_end)`; empty (0, 0) until
    /// the first day is entered.
    today_start: u64,
    today_end: u64,
    /// Bucket width is `1 << shift` microseconds.
    shift: u32,
    /// Bucket index of the current day.
    cur_bucket: usize,
    /// Start time (µs) of the current day's window; all queued events are
    /// at or after this instant.
    cur_day_start: u64,
    len: usize,
    /// Peak occupancy since the last resize — the width re-tune divides
    /// the event-time span by this, not the instantaneous length, so a
    /// resize triggered at a burst trough does not lock in a bucket
    /// width sized for a near-empty queue.
    tune_max_len: usize,
    /// Double the bucket directory above this occupancy.
    grow_at: usize,
    /// Halve the bucket directory below this occupancy.
    shrink_at: usize,
    /// One-entry memo of the last [`CalendarQueue::earliest_day`] scan —
    /// the sharded window planner reads `next_time` and then `pop_next`
    /// repeats the identical search, so caching halves the per-window
    /// scan cost. Invalidated by every mutation that can change the
    /// earliest event (push, entering a day, resize); debug builds
    /// re-verify every hit against a fresh scan.
    earliest_memo: std::cell::Cell<Option<(u64, usize, u64, bool)>>,
    stats: QueueStats,
}

/// Slab entry: a queued event plus the intrusive list link (bucket list
/// when live, freelist when free).
#[derive(Debug)]
struct SlabNode<T> {
    ev: Option<Scheduled<T>>,
    next: u32,
}

/// Null slab index.
const NIL: u32 = u32::MAX;

impl<T> CalendarQueue<T> {
    /// Creates an empty calendar starting at `MIN_BUCKETS` buckets of
    /// ~1 ms; the geometry re-tunes itself as events arrive.
    pub fn new() -> Self {
        let mut q = CalendarQueue {
            heads: vec![NIL; MIN_BUCKETS],
            slab: Vec::new(),
            free: NIL,
            today: Vec::new(),
            today_start: 0,
            today_end: 0,
            shift: 10, // 1.024 ms — retuned at the first resize
            cur_bucket: 0,
            cur_day_start: 0,
            len: 0,
            tune_max_len: 0,
            grow_at: 0,
            shrink_at: 0,
            earliest_memo: std::cell::Cell::new(None),
            stats: QueueStats::default(),
        };
        q.set_thresholds();
        q.stats.bucket_count = q.heads.len();
        q.stats.bucket_width_us = 1 << q.shift;
        q
    }

    fn set_thresholds(&mut self) {
        let nb = self.heads.len();
        self.grow_at = if nb >= MAX_BUCKETS {
            usize::MAX
        } else {
            nb * 2
        };
        // Shrink at a quarter, not half: a half/double band thrashes on
        // bursty workloads whose queue depth oscillates ~2× around a
        // resize boundary (each resize relinks the whole slab).
        self.shrink_at = if nb <= MIN_BUCKETS { 0 } else { nb / 4 };
    }

    #[inline]
    fn bucket_of(&self, time_us: u64) -> usize {
        ((time_us >> self.shift) as usize) & (self.heads.len() - 1)
    }

    /// Allocates a slab slot for `ev`, linking it in front of `next`.
    fn alloc(&mut self, ev: Scheduled<T>, next: u32) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let node = &mut self.slab[i as usize];
            self.free = node.next;
            node.ev = Some(ev);
            node.next = next;
            i
        } else {
            debug_assert!(self.slab.len() < u32::MAX as usize);
            let i = self.slab.len() as u32;
            self.slab.push(SlabNode { ev: Some(ev), next });
            i
        }
    }

    /// Earliest event time in bucket `b` among events earlier than
    /// `day_end`, if any.
    fn window_min_time(&self, b: usize, day_end: u64) -> Option<u64> {
        let mut best = u64::MAX;
        let mut i = self.heads[b];
        while i != NIL {
            let node = &self.slab[i as usize];
            let t = node
                .ev
                .as_ref()
                .expect("linked slots are live")
                .time
                .as_micros();
            if t < day_end && t < best {
                best = t;
            }
            i = node.next;
        }
        (best != u64::MAX).then_some(best)
    }

    /// Time of the earliest queued event (the sparse-queue slow path; a
    /// linear sweep of the slab, cache-sequential). Ties by `seq` are
    /// irrelevant here because the whole day is extracted and sorted
    /// afterwards.
    fn global_min_time(&self) -> Option<u64> {
        let mut best = u64::MAX;
        for node in &self.slab {
            if let Some(ev) = &node.ev {
                let t = ev.time.as_micros();
                if t < best {
                    best = t;
                }
            }
        }
        (best != u64::MAX).then_some(best)
    }

    /// Moves every event of the day starting at `day_start` from bucket
    /// `b` into the sorted `today` buffer and commits the calendar
    /// position to that day.
    fn enter_day(&mut self, b: usize, day_start: u64) {
        self.earliest_memo.set(None);
        let day_end = day_start + (1u64 << self.shift);
        debug_assert!(self.today.is_empty());
        let mut i = self.heads[b];
        let mut prev = NIL;
        while i != NIL {
            let next = self.slab[i as usize].next;
            let t = self.slab[i as usize]
                .ev
                .as_ref()
                .expect("linked slots are live")
                .time
                .as_micros();
            if t < day_end {
                let ev = self.slab[i as usize].ev.take().expect("checked live");
                if prev == NIL {
                    self.heads[b] = next;
                } else {
                    self.slab[prev as usize].next = next;
                }
                self.slab[i as usize].next = self.free;
                self.free = i;
                self.today.push(ev);
            } else {
                prev = i;
            }
            i = next;
        }
        // Descending order: the next event to dispatch sits at the back.
        self.today
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
        self.today_start = day_start;
        self.today_end = day_end;
        self.cur_bucket = b;
        self.cur_day_start = day_start;
    }

    /// The earliest queued event's `(time, bucket, day_start)` — the
    /// active day's buffer is assumed empty — walking one year of days
    /// from the committed position and falling back to the direct
    /// minimum scan. Commits nothing: `pop_next` enters the returned day
    /// (and counts the year scan), `next_time` merely reads the time, so
    /// the two can never disagree on the search. Memoized until the next
    /// mutation, since the window planner asks and the following pop
    /// repeats the question.
    ///
    /// The `bool` reports whether the year-scan fallback was needed.
    fn earliest_day(&self) -> Option<(u64, usize, u64, bool)> {
        if let Some(hit) = self.earliest_memo.get() {
            debug_assert_eq!(Some(hit), self.scan_earliest_day(), "stale earliest memo");
            return Some(hit);
        }
        let found = self.scan_earliest_day();
        self.earliest_memo.set(found);
        found
    }

    /// The uncached scan behind [`CalendarQueue::earliest_day`].
    fn scan_earliest_day(&self) -> Option<(u64, usize, u64, bool)> {
        if self.len == 0 {
            return None;
        }
        debug_assert!(self.today.is_empty());
        let nb = self.heads.len();
        let width = 1u64 << self.shift;
        let mut bucket = self.cur_bucket;
        let mut day_start = self.cur_day_start;
        for _ in 0..nb {
            let day_end = day_start + width;
            if let Some(min_t) = self.window_min_time(bucket, day_end) {
                return Some((min_t, bucket, day_start, false));
            }
            bucket = (bucket + 1) & (nb - 1);
            day_start += width;
        }
        // A whole year without a hit: the queue is sparse relative to
        // the bucket width. Find the global minimum directly.
        let t = self.global_min_time().expect("len > 0");
        let day = (t >> self.shift) << self.shift;
        Some((t, self.bucket_of(t), day, true))
    }

    /// Pops the next event off the `today` buffer.
    fn pop_from_today(&mut self) -> Scheduled<T> {
        let ev = self.today.pop().expect("today is non-empty");
        self.len -= 1;
        self.stats.pops += 1;
        if self.len < self.shrink_at {
            let half = self.heads.len() / 2;
            self.resize(half);
        }
        ev
    }

    /// Rebuilds the bucket directory at `new_nb` buckets (clamped to the
    /// power-of-two range), re-tuning the bucket width from the deltas
    /// between queued event times. Events never move — the slab is simply
    /// relinked.
    fn resize(&mut self, new_nb: usize) {
        self.earliest_memo.set(None);
        let new_nb = new_nb.clamp(MIN_BUCKETS, MAX_BUCKETS);
        if let Some(shift) = self.tune_shift() {
            self.shift = shift;
        }
        self.heads = vec![NIL; new_nb];
        // Keep the old position, re-aligned downward for the new width.
        // The position must stay at or before every event *and* every
        // legal future push (anything at or after `now`), so jumping
        // forward to the minimum queued event would be wrong: pre-run
        // scheduling can queue far-future traffic before the time-zero
        // timers are pushed. A position behind is always safe — the next
        // pop re-synchronizes via the day scan or the direct search.
        let anchor = self.cur_day_start;
        self.cur_day_start = (anchor >> self.shift) << self.shift;
        self.cur_bucket = ((anchor >> self.shift) as usize) & (new_nb - 1);
        // Relink every live slab slot under the new geometry (free slots
        // keep their freelist chaining — the loop never touches them).
        for i in 0..self.slab.len() {
            if let Some(ev) = &self.slab[i].ev {
                let b = ((ev.time.as_micros() >> self.shift) as usize) & (new_nb - 1);
                self.slab[i].next = self.heads[b];
                self.heads[b] = i as u32;
            }
        }
        // The active day (if any) is folded back in and re-entered by the
        // next pop.
        let today = std::mem::take(&mut self.today);
        self.today_start = 0;
        self.today_end = 0;
        for ev in today {
            let b = self.bucket_of(ev.time.as_micros());
            let head = self.heads[b];
            let slot = self.alloc(ev, head);
            self.heads[b] = slot;
        }
        self.set_thresholds();
        self.tune_max_len = self.len;
        self.stats.resizes += 1;
        self.stats.bucket_count = new_nb;
        self.stats.bucket_width_us = 1 << self.shift;
    }

    /// Picks a power-of-two bucket width ≈ 3× the mean gap between
    /// queued event times — the span of the queued events divided by the
    /// *peak* occupancy since the last resize — so roughly one to three
    /// events share a day at peak and the live window spans about a
    /// year. Dividing by the instantaneous length instead would size the
    /// buckets for whatever trough or spike happened to trigger the
    /// resize. The span is estimated from an evenly-spaced sample over
    /// the slab plus the active day's bounds. `None` when there are too
    /// few distinct times to measure.
    fn tune_shift(&self) -> Option<u32> {
        if self.len < 2 {
            return None;
        }
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let step = (self.slab.len() / TUNE_SAMPLES).max(1);
        let mut i = 0;
        while i < self.slab.len() {
            if let Some(ev) = &self.slab[i].ev {
                let t = ev.time.as_micros();
                lo = lo.min(t);
                hi = hi.max(t);
            }
            i += step;
        }
        // `today` is sorted descending: front is the max, back the min.
        if let (Some(first), Some(last)) = (self.today.first(), self.today.last()) {
            hi = hi.max(first.time.as_micros());
            lo = lo.min(last.time.as_micros());
        }
        if lo >= hi {
            return None;
        }
        let span = hi - lo;
        let count = self.tune_max_len.max(self.len).max(2) as u64;
        let mean_gap = (span / (count - 1)).max(1);
        let width = (mean_gap.saturating_mul(3)).max(1);
        // Round up to the next power of two; clamp to sane shifts
        // (1 µs .. ~17 min per bucket).
        let shift = (64 - (width - 1).leading_zeros()).clamp(0, 30);
        Some(shift)
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, ev: Scheduled<T>) {
        self.earliest_memo.set(None);
        let t = ev.time.as_micros();
        debug_assert!(
            t >= self.cur_day_start,
            "event pushed before the calendar's current day"
        );
        if t >= self.today_start && t < self.today_end {
            // The event belongs to the day being drained: merge it into
            // the sorted buffer so it dispatches in exact (time, seq)
            // order among its same-day peers.
            let key = (ev.time, ev.seq);
            let idx = self.today.partition_point(|e| (e.time, e.seq) > key);
            self.today.insert(idx, ev);
        } else {
            let b = self.bucket_of(t);
            let head = self.heads[b];
            let slot = self.alloc(ev, head);
            self.heads[b] = slot;
        }
        self.len += 1;
        self.stats.pushes += 1;
        self.stats.max_len = self.stats.max_len.max(self.len);
        self.tune_max_len = self.tune_max_len.max(self.len);
        if self.len > self.grow_at {
            let doubled = self.heads.len() * 2;
            self.resize(doubled);
        }
    }

    fn pop_next(&mut self, bound: Option<SimTime>) -> Option<Scheduled<T>> {
        // Fast path: the active day still has events.
        if let Some(last) = self.today.last() {
            if bound.is_some_and(|b| last.time > b) {
                return None;
            }
            return Some(self.pop_from_today());
        }
        // The search never commits the calendar position — only entering
        // a day (which always pops) does — so a bounded miss never
        // advances the calendar past a (future) push.
        let (min_t, bucket, day_start, year_scanned) = self.earliest_day()?;
        if year_scanned {
            self.stats.year_scans += 1;
        }
        if bound.is_some_and(|b| min_t > b.as_micros()) {
            return None;
        }
        self.enter_day(bucket, day_start);
        Some(self.pop_from_today())
    }

    fn next_time(&self) -> Option<SimTime> {
        if let Some(last) = self.today.last() {
            return Some(last.time);
        }
        self.earliest_day()
            .map(|(t, _, _, _)| SimTime::from_micros(t))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn stats(&self) -> QueueStats {
        self.stats
    }
}

/// Which [`EventQueue`] implementation a simulation uses.
///
/// Both produce bit-identical dispatch order (asserted by the
/// `queue_equivalence` suite), so the choice is purely a performance
/// knob: the calendar queue stays O(1) and cache-warm at 1k–10k-node
/// scale (~1.6× the heap's event rate at 10k), while a small simulation's
/// heap fits in cache and wins on constant factors. When neither the
/// scenario nor `EGM_EVENT_QUEUE` forces a choice, the simulator picks by
/// size ([`QueueKind::auto_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary heap (`O(log n)`, reference implementation).
    Heap,
    /// Calendar queue (`O(1)` amortized, auto-tuned buckets).
    Calendar,
}

/// Node count at which the size-based default switches to the calendar
/// queue: at a few hundred nodes the heap still fits in L2 and its
/// constant factors win; from ~512 on, queue depth scales with nodes and
/// the heap's `log n` random touches go cache-cold.
pub const CALENDAR_MIN_NODES: usize = 512;

impl QueueKind {
    /// Parses a label (`"heap"` or `"calendar"`).
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "heap" | "binary-heap" => Some(QueueKind::Heap),
            "calendar" => Some(QueueKind::Calendar),
            _ => None,
        }
    }

    /// Reads the `EGM_EVENT_QUEUE` override from the environment; `None`
    /// when unset (size-based default applies). Setting `heap` is the
    /// escape hatch should the calendar ever misbehave; `calendar`
    /// forces the scale queue on small runs.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — silently falling back would turn
    /// an A/B comparison into two identical runs.
    pub fn from_env() -> Option<Self> {
        match std::env::var("EGM_EVENT_QUEUE") {
            Err(_) => None,
            Ok(v) => Some(QueueKind::parse(&v).unwrap_or_else(|| {
                panic!("unrecognized EGM_EVENT_QUEUE {v:?}: use heap or calendar")
            })),
        }
    }

    /// The size-based default: heap below [`CALENDAR_MIN_NODES`] nodes,
    /// calendar from there on.
    pub fn auto_for(nodes: usize) -> Self {
        if nodes >= CALENDAR_MIN_NODES {
            QueueKind::Calendar
        } else {
            QueueKind::Heap
        }
    }

    /// Builds the queue behind the enum dispatcher.
    pub(crate) fn build<T>(self, capacity: usize) -> QueueImpl<T> {
        match self {
            QueueKind::Heap => QueueImpl::Heap(HeapQueue::with_capacity(capacity)),
            QueueKind::Calendar => QueueImpl::Calendar(CalendarQueue::new()),
        }
    }
}

/// Enum dispatcher so the simulator pays a predictable branch instead of
/// a virtual call on the hottest path.
#[derive(Debug)]
pub(crate) enum QueueImpl<T> {
    Heap(HeapQueue<T>),
    Calendar(CalendarQueue<T>),
}

impl<T> QueueImpl<T> {
    #[inline]
    pub(crate) fn push(&mut self, ev: Scheduled<T>) {
        match self {
            QueueImpl::Heap(q) => q.push(ev),
            QueueImpl::Calendar(q) => q.push(ev),
        }
    }

    #[inline]
    pub(crate) fn pop_next(&mut self, bound: Option<SimTime>) -> Option<Scheduled<T>> {
        match self {
            QueueImpl::Heap(q) => q.pop_next(bound),
            QueueImpl::Calendar(q) => q.pop_next(bound),
        }
    }

    pub(crate) fn stats(&self) -> QueueStats {
        match self {
            QueueImpl::Heap(q) => q.stats(),
            QueueImpl::Calendar(q) => q.stats(),
        }
    }

    pub(crate) fn next_time(&self) -> Option<SimTime> {
        match self {
            QueueImpl::Heap(q) => q.next_time(),
            QueueImpl::Calendar(q) => q.next_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{CalendarQueue, EventQueue, HeapQueue, QueueKind, Scheduled};
    use crate::SimTime;

    fn ev(ms: f64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: SimTime::from_ms(ms),
            seq,
            item: seq,
        }
    }

    fn drain<Q: EventQueue<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(ev) = q.pop_next(None) {
            out.push((ev.time.as_micros(), ev.seq));
        }
        out
    }

    #[test]
    fn both_queues_pop_earliest_first() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q = kind.build(16);
            q.push(ev(5.0, 0));
            q.push(ev(1.0, 1));
            q.push(ev(3.0, 2));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop_next(None))
                .map(|e| e.seq)
                .collect();
            assert_eq!(seqs, vec![1, 2, 0], "{kind:?}");
        }
    }

    #[test]
    fn both_queues_break_ties_by_sequence() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q = kind.build(16);
            q.push(ev(2.0, 7));
            q.push(ev(2.0, 3));
            q.push(ev(2.0, 5));
            let seqs: Vec<u64> = std::iter::from_fn(|| q.pop_next(None))
                .map(|e| e.seq)
                .collect();
            assert_eq!(seqs, vec![3, 5, 7], "{kind:?}");
        }
    }

    #[test]
    fn bounded_pop_respects_the_deadline() {
        for kind in [QueueKind::Heap, QueueKind::Calendar] {
            let mut q = kind.build(16);
            q.push(ev(10.0, 0));
            q.push(ev(30.0, 1));
            assert!(q.pop_next(Some(SimTime::from_ms(5.0))).is_none());
            assert_eq!(q.pop_next(Some(SimTime::from_ms(10.0))).unwrap().seq, 0);
            assert!(q.pop_next(Some(SimTime::from_ms(20.0))).is_none());
            assert_eq!(q.pop_next(None).unwrap().seq, 1);
            assert!(q.pop_next(None).is_none());
        }
    }

    #[test]
    fn calendar_matches_heap_on_a_large_interleaved_run() {
        // Deterministic pseudo-random schedule: pushes at clustered and
        // spread-out times, interleaved with pops (monotone push times
        // with respect to pops, as the simulator guarantees).
        let mut heap: HeapQueue<u64> = HeapQueue::with_capacity(16);
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut state = 0x9E37_79B9u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut now_us = 0u64;
        let mut seq = 0u64;
        for round in 0..5_000u64 {
            let op = next() % 3;
            if op < 2 {
                // Mix of tight ties and far-future events.
                let delta = match next() % 4 {
                    0 => 0,
                    1 => next() % 50,
                    2 => next() % 5_000,
                    _ => next() % 500_000,
                };
                let e = Scheduled {
                    time: SimTime::from_micros(now_us + delta),
                    seq,
                    item: round,
                };
                seq += 1;
                heap.push(e.clone());
                cal.push(e);
            } else {
                let a = heap.pop_next(None);
                let b = cal.pop_next(None);
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.time, x.seq, x.item), (y.time, y.seq, y.item));
                        now_us = x.time.as_micros();
                    }
                    (None, None) => {}
                    _ => panic!("queues disagree on emptiness"),
                }
            }
        }
        assert_eq!(drain(&mut heap), drain(&mut cal));
        let (hs, cs) = (heap.stats(), cal.stats());
        assert_eq!(hs.pushes, cs.pushes);
        assert_eq!(hs.pops, cs.pops);
        assert_eq!(hs.max_len, cs.max_len);
        assert!(cs.resizes > 0, "a 5k-op run must have re-tuned");
    }

    #[test]
    fn calendar_resizes_and_retunes() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        for i in 0..1_000u64 {
            cal.push(Scheduled {
                time: SimTime::from_micros(i * 700),
                seq: i,
                item: i,
            });
        }
        let stats = cal.stats();
        assert!(stats.resizes > 0);
        assert!(stats.bucket_count > super::MIN_BUCKETS);
        assert_eq!(stats.max_len, 1_000);
        let popped = drain(&mut cal);
        assert_eq!(popped.len(), 1_000);
        assert!(popped.windows(2).all(|w| w[0] < w[1]), "sorted order");
    }

    #[test]
    fn calendar_handles_sparse_far_future_events() {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        // One event far beyond the initial year forces the direct-search
        // fallback.
        cal.push(ev(1e7, 0));
        cal.push(ev(2e7, 1));
        assert_eq!(cal.pop_next(None).unwrap().seq, 0);
        assert_eq!(cal.pop_next(None).unwrap().seq, 1);
        assert!(cal.stats().year_scans > 0, "sparse pops take the slow path");
    }

    #[test]
    fn bounded_miss_does_not_lose_later_pushes() {
        // A bounded pop that scans past empty days must not commit the
        // position: a subsequent push at an earlier (but >= now) time
        // still pops first.
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        cal.push(ev(1000.0, 0));
        assert!(cal.pop_next(Some(SimTime::from_ms(50.0))).is_none());
        cal.push(ev(10.0, 1));
        assert_eq!(cal.pop_next(None).unwrap().seq, 1);
        assert_eq!(cal.pop_next(None).unwrap().seq, 0);
    }

    #[test]
    fn queue_kind_parses_and_reads_env() {
        assert_eq!(QueueKind::parse("heap"), Some(QueueKind::Heap));
        assert_eq!(QueueKind::parse("calendar"), Some(QueueKind::Calendar));
        assert_eq!(QueueKind::parse("splay"), None);
    }
}
