//! Deterministic discrete-event network simulator (ModelNet substitute).
//!
//! The paper evaluates its protocol on ModelNet (§5.1): unmodified programs
//! on virtual nodes whose traffic is routed through emulators that apply
//! the delay, bandwidth and loss of an Inet-3.0 model. This crate provides
//! the equivalent substrate for a pure-Rust reproduction: protocol nodes
//! implement [`Protocol`] and exchange messages through a virtual network
//! whose one-way delays come from an [`egm_topology::RoutedModel`] (or a
//! synthetic matrix), with configurable loss, jitter, and node *silencing*
//! — the firewall-rule fault injection of §6.3.
//!
//! Determinism: a single experiment seed drives one xoshiro stream per
//! node plus one network (loss/jitter) stream per *sender*; events at
//! equal timestamps are ordered by an intrinsic `(origin, origin-seq)`
//! key (see [`sim`]). The same scenario always produces byte-identical
//! results (the root integration tests assert this across the full
//! stack) — on the sequential [`Sim`] and on the partitioned
//! [`ShardedSim`], which splits one large run across worker shards
//! under conservative time windows with identical outputs for every
//! shard count (see [`shard`]).
//!
//! # Examples
//!
//! ```
//! use egm_simnet::{Context, NodeId, Protocol, Sim, SimConfig, SimDuration, Wire};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Wire for Ping {
//!     fn wire_bytes(&self) -> u32 { 8 }
//! }
//!
//! struct Node;
//! impl Protocol for Node {
//!     type Msg = Ping;
//!     fn on_receive(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {}
//! }
//!
//! let mut sim = Sim::new(SimConfig::uniform(2, 10.0), 42, vec![Node, Node]);
//! sim.send_external(NodeId(0), NodeId(1), Ping);
//! sim.run_for(SimDuration::from_ms(100.0));
//! assert_eq!(sim.traffic().total_messages(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod net;
pub mod progress;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod wire;

pub use event::{CalendarQueue, EventQueue, HeapQueue, QueueKind, QueueStats, Scheduled};
pub use net::{Network, SimConfig};
pub use progress::{NoopSink, ProgressEvent, ProgressSink, SharedSink};
pub use shard::{Partition, PartitionStrategy, ShardChoice, ShardStats, ShardedSim};
pub use sim::{Context, Protocol, Sim, TimerTag, TimerToken};
pub use stats::{LinkTally, Traffic};
pub use time::{SimDuration, SimTime};
pub use wire::Wire;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated protocol node (dense, `0..n`).
///
/// # Examples
///
/// ```
/// use egm_simnet::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
