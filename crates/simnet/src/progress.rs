//! Observe-only progress reporting for long runs.
//!
//! A [`ProgressSink`] receives [`ProgressEvent`]s at *coarse* execution
//! boundaries — conservative window plans in [`crate::ShardedSim`], and
//! chunk/tick/summary boundaries in the workload runner that drives the
//! engines. The sink is strictly an observer: it is handed copies of
//! counters the engine already maintains, it is never consulted for
//! decisions, and no event is emitted from the per-event hot path. A run
//! with a sink installed is therefore byte-identical to the same run
//! without one (the workload `progress_determinism` test pins this).
//!
//! Implementations must be cheap and non-blocking: window events fire
//! once per planned window, which on a large sharded run can be
//! thousands of times per wall-clock second.

use std::sync::Arc;

/// A coarse progress notification from an engine or the runner.
///
/// Variants carry only plain counters; anything wall-clock (rates,
/// timestamps) is for the *consumer* to add, so emission never reads
/// the system clock and runs stay reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A conservative window was planned by the sharded engine. Emitted
    /// by both window drivers at plan time, before the window executes.
    Window {
        /// Windows planned so far in this engine (1-based, cumulative).
        window: u64,
        /// The earliest pending event time the window was planned from,
        /// in microseconds of virtual time.
        now_us: u64,
        /// Events dispatched across all shards *before* this window.
        events: u64,
    },
    /// The runner advanced the sequential engine by one fixed
    /// virtual-time chunk (the sequential engine has no windows, so the
    /// runner chunks `run_until` into deterministic slices instead).
    Chunk {
        /// Virtual time reached, in milliseconds.
        now_ms: f64,
        /// Events dispatched so far.
        events: u64,
    },
    /// A fault was scheduled onto the engine (the schedule is replayed
    /// verbatim from the scenario, so activation times are known at
    /// submission; emitted once per fault at schedule time).
    Fault {
        /// Virtual activation time, in milliseconds.
        at_ms: f64,
        /// Human-readable description of the fault action.
        action: String,
    },
    /// An online re-rank tick completed: the hub ranking re-ran over
    /// the live population and every node was rebound to the new set.
    Rerank {
        /// Tick index (1-based).
        tick: u32,
        /// Virtual time of the tick, in milliseconds.
        at_ms: f64,
        /// Size of the newly ranked best set.
        best: usize,
    },
    /// The run finished and its outcome was collected.
    Summary {
        /// Total simulator events dispatched by the run.
        events: u64,
        /// Mean fraction of eligible nodes that delivered each message.
        delivery_fraction: f64,
        /// Steady-state publish→delivery latency percentiles, ms.
        p50_ms: f64,
        /// 99th percentile latency, ms.
        p99_ms: f64,
        /// 99.9th percentile latency, ms.
        p999_ms: f64,
    },
}

/// Receiver for [`ProgressEvent`]s.
///
/// `Send + Sync` because the threaded window driver emits from its
/// leader worker thread; `Debug` so engines holding a sink can keep
/// deriving `Debug`.
pub trait ProgressSink: Send + Sync + std::fmt::Debug {
    /// Delivers one event. Called from engine/runner threads; must not
    /// block for long and must not panic.
    fn emit(&self, event: ProgressEvent);
}

/// A sink that drops every event — the explicit spelling of "no
/// observer". Installing it is indistinguishable from installing none.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl ProgressSink for NoopSink {
    fn emit(&self, _event: ProgressEvent) {}
}

/// Convenience alias for the shared-ownership form every API accepts.
pub type SharedSink = Arc<dyn ProgressSink>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    struct Collecting(Mutex<Vec<ProgressEvent>>);

    impl ProgressSink for Collecting {
        fn emit(&self, event: ProgressEvent) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn noop_sink_accepts_everything() {
        let sink = NoopSink;
        sink.emit(ProgressEvent::Chunk {
            now_ms: 1.0,
            events: 2,
        });
    }

    #[test]
    fn events_round_trip_through_a_collecting_sink() {
        let sink = Collecting::default();
        let ev = ProgressEvent::Window {
            window: 1,
            now_us: 500,
            events: 0,
        };
        sink.emit(ev.clone());
        assert_eq!(sink.0.lock().unwrap().as_slice(), &[ev]);
    }
}
