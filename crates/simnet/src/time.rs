//! Virtual time: microsecond-resolution instants and durations.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since start.
///
/// # Examples
///
/// ```
/// use egm_simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_ms(1.5);
/// assert_eq!(t.as_ms(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from milliseconds (fractions are rounded to the nearest
    /// microsecond).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite.
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "bad time {ms}ms");
        SimTime((ms * 1000.0).round() as u64)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Constructs from milliseconds (rounded to the nearest microsecond).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite.
    pub fn from_ms(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "bad duration {ms}ms");
        SimDuration((ms * 1000.0).round() as u64)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Multiplies the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "bad factor {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::{SimDuration, SimTime};

    #[test]
    fn ms_round_trips() {
        assert_eq!(SimTime::from_ms(2.5).as_micros(), 2500);
        assert_eq!(SimTime::from_ms(2.5).as_ms(), 2.5);
        assert_eq!(SimDuration::from_ms(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_secs(2).as_ms(), 2000.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(5.0);
        assert_eq!(t, SimTime::from_ms(15.0));
        assert_eq!(t - SimTime::from_ms(4.0), SimDuration::from_ms(11.0));
        // saturating subtraction
        assert_eq!(
            SimTime::from_ms(1.0) - SimTime::from_ms(9.0),
            SimDuration::ZERO
        );
        let mut u = SimTime::ZERO;
        u += SimDuration::from_ms(3.0);
        assert_eq!(u.as_ms(), 3.0);
        assert_eq!(
            SimDuration::from_ms(1.0) + SimDuration::from_ms(2.0),
            SimDuration::from_ms(3.0)
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_ms(5.0);
        let late = SimTime::from_ms(8.0);
        assert_eq!(late.since(early).as_ms(), 3.0);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_ms(10.0).mul_f64(0.25),
            SimDuration::from_ms(2.5)
        );
        assert_eq!(SimDuration::from_ms(10.0).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_ms(-1.0);
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(SimTime::from_ms(1.5).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_ms(0.25).to_string(), "0.250ms");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(2.0));
        assert!(SimDuration::from_ms(1.0) < SimDuration::from_ms(1.001));
    }
}
