//! The [`Wire`] trait: what the virtual network needs to know about a
//! protocol message.

/// A message that can cross the simulated network.
///
/// The simulator uses [`Wire::wire_bytes`] for byte accounting and
/// [`Wire::is_payload`] to tally *payload transmissions* per link — the
/// quantity behind the paper's payload/msg metric (Fig. 5) and the emergent
/// structure plots (Fig. 4, top-5 % connections by payload carried).
///
/// # Examples
///
/// ```
/// use egm_simnet::Wire;
///
/// #[derive(Clone, Debug)]
/// enum Msg { Data(Vec<u8>), Ack }
///
/// impl Wire for Msg {
///     fn wire_bytes(&self) -> u32 {
///         match self {
///             // 24-byte header as in NeEM (§5.3).
///             Msg::Data(d) => 24 + d.len() as u32,
///             Msg::Ack => 24,
///         }
///     }
///     fn is_payload(&self) -> bool {
///         matches!(self, Msg::Data(_))
///     }
/// }
/// ```
pub trait Wire: Clone + std::fmt::Debug {
    /// Size of this message on the wire, in bytes (headers included).
    fn wire_bytes(&self) -> u32;

    /// Whether this message carries application payload (as opposed to
    /// control traffic such as `IHAVE`/`IWANT`, membership shuffles or
    /// monitor pings).
    fn is_payload(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::Wire;

    #[derive(Clone, Debug)]
    struct Tiny;
    impl Wire for Tiny {
        fn wire_bytes(&self) -> u32 {
            1
        }
    }

    #[test]
    fn default_is_control_traffic() {
        assert!(!Tiny.is_payload());
        assert_eq!(Tiny.wire_bytes(), 1);
    }
}
