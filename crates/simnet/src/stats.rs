//! Transport-level traffic accounting.
//!
//! ModelNet experiments log every payload transmission per link (§5.3); the
//! simulator does the same here, at the point where messages enter the
//! virtual network. Loss and silencing are applied *after* accounting:
//! a transmitted-but-dropped packet still consumed bandwidth at the sender,
//! which matches how the paper counts transmissions.

use crate::NodeId;
use egm_rng::hash::FastHashMap;
use serde::{Deserialize, Serialize};

/// Per-directed-link tally of traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTally {
    /// Messages of any kind sent over this link.
    pub messages: u64,
    /// Total bytes sent over this link.
    pub bytes: u64,
    /// Payload-bearing messages sent over this link.
    pub payloads: u64,
}

/// Aggregated traffic over the whole virtual network.
///
/// # Examples
///
/// ```
/// use egm_simnet::{NodeId, Traffic};
///
/// let mut t = Traffic::default();
/// t.record(NodeId(0), NodeId(1), 280, true);
/// t.record(NodeId(0), NodeId(1), 40, false);
/// assert_eq!(t.total_payloads(), 1);
/// assert_eq!(t.total_bytes(), 320);
/// assert_eq!(t.node_payloads_sent(NodeId(0)), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Traffic {
    links: FastHashMap<(NodeId, NodeId), LinkTally>,
    total: LinkTally,
}

impl Traffic {
    /// Records one message from `from` to `to`.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32, payload: bool) {
        let tally = self.links.entry((from, to)).or_default();
        tally.messages += 1;
        tally.bytes += u64::from(bytes);
        self.total.messages += 1;
        self.total.bytes += u64::from(bytes);
        if payload {
            tally.payloads += 1;
            self.total.payloads += 1;
        }
    }

    /// Total messages sent (including later-dropped ones).
    pub fn total_messages(&self) -> u64 {
        self.total.messages
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.total.bytes
    }

    /// Total payload transmissions.
    pub fn total_payloads(&self) -> u64 {
        self.total.payloads
    }

    /// Number of directed links that carried at least one message.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Tally for one directed link, if it carried traffic.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<LinkTally> {
        self.links.get(&(from, to)).copied()
    }

    /// All directed links and their tallies, in deterministic
    /// (source, destination) order.
    pub fn links(&self) -> Vec<((NodeId, NodeId), LinkTally)> {
        let mut v: Vec<_> = self.links.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by_key(|&((a, b), _)| (a, b));
        v
    }

    /// Payload transmissions sent by one node (summed over its outgoing
    /// links).
    pub fn node_payloads_sent(&self, node: NodeId) -> u64 {
        self.links
            .iter()
            .filter(|&(&(from, _), _)| from == node)
            .map(|(_, t)| t.payloads)
            .sum()
    }

    /// Per-node payload transmission counts for nodes `0..n`.
    pub fn payloads_sent_per_node(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        for (&(from, _), t) in &self.links {
            if from.index() < n {
                out[from.index()] += t.payloads;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::Traffic;
    use crate::NodeId;

    #[test]
    fn records_accumulate_per_link() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 100, true);
        t.record(NodeId(0), NodeId(1), 50, false);
        t.record(NodeId(1), NodeId(0), 10, true);
        let l01 = t.link(NodeId(0), NodeId(1)).expect("link exists");
        assert_eq!(l01.messages, 2);
        assert_eq!(l01.bytes, 150);
        assert_eq!(l01.payloads, 1);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.total_payloads(), 2);
        assert!(t.link(NodeId(2), NodeId(0)).is_none());
    }

    #[test]
    fn links_are_sorted_deterministically() {
        let mut t = Traffic::default();
        t.record(NodeId(2), NodeId(0), 1, false);
        t.record(NodeId(0), NodeId(2), 1, false);
        t.record(NodeId(0), NodeId(1), 1, false);
        let keys: Vec<_> = t.links().iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0))
            ]
        );
    }

    #[test]
    fn per_node_payload_counts() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 1, true);
        t.record(NodeId(0), NodeId(2), 1, true);
        t.record(NodeId(1), NodeId(2), 1, false);
        assert_eq!(t.payloads_sent_per_node(3), vec![2, 0, 0]);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 2);
        assert_eq!(t.node_payloads_sent(NodeId(9)), 0);
    }
}
