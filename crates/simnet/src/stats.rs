//! Transport-level traffic accounting.
//!
//! ModelNet experiments log every payload transmission per link (§5.3); the
//! simulator does the same here, at the point where messages enter the
//! virtual network. Loss and silencing are applied *after* accounting:
//! a transmitted-but-dropped packet still consumed bandwidth at the sender,
//! which matches how the paper counts transmissions.
//!
//! Accounting is purely sparse: only links that actually carried traffic
//! occupy memory, and per-node payload counters live in a flat vector. A
//! configurable *spill threshold* bounds the per-link map at scale — once
//! the map holds that many distinct links, traffic on further new links is
//! folded into a single aggregate [`Traffic::spilled`] tally (totals and
//! per-node counters stay exact), so a 10k-node run cannot let link
//! accounting grow toward the n² worst case.

use crate::NodeId;
use egm_rng::hash::FastHashMap;
use serde::{Deserialize, Serialize};

/// Per-directed-link tally of traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTally {
    /// Messages of any kind sent over this link.
    pub messages: u64,
    /// Total bytes sent over this link.
    pub bytes: u64,
    /// Payload-bearing messages sent over this link.
    pub payloads: u64,
}

impl LinkTally {
    fn add(&mut self, bytes: u32, payload: bool) {
        self.messages += 1;
        self.bytes += u64::from(bytes);
        if payload {
            self.payloads += 1;
        }
    }
}

/// Aggregated traffic over the whole virtual network.
///
/// # Examples
///
/// ```
/// use egm_simnet::{NodeId, Traffic};
///
/// let mut t = Traffic::default();
/// t.record(NodeId(0), NodeId(1), 280, true);
/// t.record(NodeId(0), NodeId(1), 40, false);
/// assert_eq!(t.total_payloads(), 1);
/// assert_eq!(t.total_bytes(), 320);
/// assert_eq!(t.node_payloads_sent(NodeId(0)), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Traffic {
    links: FastHashMap<(NodeId, NodeId), LinkTally>,
    total: LinkTally,
    /// Payloads sent per node, grown on demand (exact even when the link
    /// map spills).
    node_payloads: Vec<u64>,
    /// Maximum number of distinct links tracked individually.
    spill_threshold: usize,
    /// Aggregate tally of traffic on links beyond the threshold.
    spilled: LinkTally,
}

impl Default for Traffic {
    fn default() -> Self {
        Traffic::with_spill_threshold(usize::MAX)
    }
}

impl Traffic {
    /// Creates an accounting table that tracks at most `spill_threshold`
    /// distinct links individually; traffic on further links is folded
    /// into the aggregate [`Traffic::spilled`] tally.
    pub fn with_spill_threshold(spill_threshold: usize) -> Self {
        Traffic {
            links: FastHashMap::default(),
            total: LinkTally::default(),
            node_payloads: Vec::new(),
            spill_threshold,
            spilled: LinkTally::default(),
        }
    }

    /// Records one message from `from` to `to`.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32, payload: bool) {
        self.total.add(bytes, payload);
        if payload {
            let idx = from.index();
            if idx >= self.node_payloads.len() {
                self.node_payloads.resize(idx + 1, 0);
            }
            self.node_payloads[idx] += 1;
        }
        if self.links.len() < self.spill_threshold {
            self.links
                .entry((from, to))
                .or_default()
                .add(bytes, payload);
        } else if let Some(tally) = self.links.get_mut(&(from, to)) {
            tally.add(bytes, payload);
        } else {
            self.spilled.add(bytes, payload);
        }
    }

    /// Total messages sent (including later-dropped ones).
    pub fn total_messages(&self) -> u64 {
        self.total.messages
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.total.bytes
    }

    /// Total payload transmissions.
    pub fn total_payloads(&self) -> u64 {
        self.total.payloads
    }

    /// Number of individually tracked directed links that carried at
    /// least one message. When [`Traffic::spilled`] is non-empty this
    /// undercounts the true distinct-link count (by design: the map is
    /// bounded).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Aggregate tally of traffic recorded after the link map reached its
    /// spill threshold (all zeros when nothing spilled).
    pub fn spilled(&self) -> LinkTally {
        self.spilled
    }

    /// Tally for one directed link, if it carried traffic and was tracked
    /// individually.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<LinkTally> {
        self.links.get(&(from, to)).copied()
    }

    /// All individually tracked directed links and their tallies, in
    /// deterministic (source, destination) order.
    pub fn links(&self) -> Vec<((NodeId, NodeId), LinkTally)> {
        let mut v: Vec<_> = self.links.iter().map(|(&k, &t)| (k, t)).collect();
        v.sort_by_key(|&((a, b), _)| (a, b));
        v
    }

    /// Payload transmissions sent by one node. Exact regardless of link
    /// spill.
    pub fn node_payloads_sent(&self, node: NodeId) -> u64 {
        self.node_payloads.get(node.index()).copied().unwrap_or(0)
    }

    /// Per-node payload transmission counts for nodes `0..n`.
    pub fn payloads_sent_per_node(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        let upto = n.min(self.node_payloads.len());
        out[..upto].copy_from_slice(&self.node_payloads[..upto]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::Traffic;
    use crate::NodeId;

    #[test]
    fn records_accumulate_per_link() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 100, true);
        t.record(NodeId(0), NodeId(1), 50, false);
        t.record(NodeId(1), NodeId(0), 10, true);
        let l01 = t.link(NodeId(0), NodeId(1)).expect("link exists");
        assert_eq!(l01.messages, 2);
        assert_eq!(l01.bytes, 150);
        assert_eq!(l01.payloads, 1);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.total_payloads(), 2);
        assert!(t.link(NodeId(2), NodeId(0)).is_none());
        assert_eq!(t.spilled().messages, 0, "no spill by default");
    }

    #[test]
    fn links_are_sorted_deterministically() {
        let mut t = Traffic::default();
        t.record(NodeId(2), NodeId(0), 1, false);
        t.record(NodeId(0), NodeId(2), 1, false);
        t.record(NodeId(0), NodeId(1), 1, false);
        let keys: Vec<_> = t.links().iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0))
            ]
        );
    }

    #[test]
    fn per_node_payload_counts() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 1, true);
        t.record(NodeId(0), NodeId(2), 1, true);
        t.record(NodeId(1), NodeId(2), 1, false);
        assert_eq!(t.payloads_sent_per_node(3), vec![2, 0, 0]);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 2);
        assert_eq!(t.node_payloads_sent(NodeId(9)), 0);
    }

    #[test]
    fn spill_threshold_bounds_the_link_map() {
        let mut t = Traffic::with_spill_threshold(2);
        t.record(NodeId(0), NodeId(1), 10, true);
        t.record(NodeId(0), NodeId(2), 10, false);
        // Third distinct link spills...
        t.record(NodeId(0), NodeId(3), 10, true);
        // ...but already-tracked links keep accumulating exactly.
        t.record(NodeId(0), NodeId(1), 10, false);
        assert_eq!(t.link_count(), 2);
        assert!(t.link(NodeId(0), NodeId(3)).is_none(), "spilled link");
        assert_eq!(t.spilled().messages, 1);
        assert_eq!(t.spilled().payloads, 1);
        assert_eq!(t.spilled().bytes, 10);
        // Totals and per-node counters stay exact.
        assert_eq!(t.total_messages(), 4);
        assert_eq!(t.total_payloads(), 2);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 2);
        let l01 = t.link(NodeId(0), NodeId(1)).expect("tracked");
        assert_eq!(l01.messages, 2);
    }

    #[test]
    fn zero_threshold_spills_everything() {
        let mut t = Traffic::with_spill_threshold(0);
        t.record(NodeId(0), NodeId(1), 7, true);
        assert_eq!(t.link_count(), 0);
        assert_eq!(t.spilled().messages, 1);
        assert_eq!(t.total_bytes(), 7);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 1);
    }
}
