//! Transport-level traffic accounting.
//!
//! ModelNet experiments log every payload transmission per link (§5.3); the
//! simulator does the same here, at the point where messages enter the
//! virtual network. Loss and silencing are applied *after* accounting:
//! a transmitted-but-dropped packet still consumed bandwidth at the sender,
//! which matches how the paper counts transmissions.
//!
//! # Storage: append-only log, aggregated on demand
//!
//! Totals and per-node payload counters are updated inline (flat
//! counters, exact). Per-link tallies, however, are *not* maintained in a
//! hash map on the hot path: at 10k nodes that map holds hundreds of
//! thousands of entries, and the per-send probe (plus its periodic
//! rehashes) was worth ~20 % of the whole event loop. Instead every send
//! appends one 16-byte record to a log — a sequential, cache-friendly
//! write — and the per-link view is built once, on demand, by a
//! counting-sort aggregation over the log. Long runs stay bounded: the
//! log folds into per-link accumulators every `COMPACT_AT` records, so
//! traffic memory is O(distinct links) plus a ~64 MB log window rather
//! than O(total sends). Results are identical to the old streaming map
//! at every query point, because the aggregation replays (or merges
//! partial folds of) the same deterministic record stream.
//!
//! # Spill threshold
//!
//! A configurable *spill threshold* bounds link tracking at scale: links
//! are tracked individually in order of first appearance, and links whose
//! first-appearance rank exceeds the threshold are folded into a single
//! aggregate [`Traffic::spilled`] tally (totals and per-node counters
//! stay exact), so a 10k-node run cannot let link accounting grow toward
//! the n² worst case. This reproduces the old streaming semantics
//! exactly: a link was tracked iff fewer than `threshold` distinct links
//! had appeared before its first record.
//!
//! The rule is applied *incrementally*, at every compaction fold, not
//! just at seal time: once `threshold` links have appeared, any link
//! first seen later is folded into the spilled tally immediately, so the
//! in-memory accumulator list (and the spool read-back working set) is
//! bounded at `threshold` entries for the whole run. Incremental capping
//! is byte-identical to capping once at seal, because record positions
//! only grow: every link in a later fold window first appears after
//! *all* links already accumulated, so the smallest-`threshold`
//! first-appearance set can never change once full — an evicted link
//! that reappears gets an even later first position and is evicted
//! again, with its tally landing in the same spilled aggregate.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Per-directed-link tally of traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTally {
    /// Messages of any kind sent over this link.
    pub messages: u64,
    /// Total bytes sent over this link.
    pub bytes: u64,
    /// Payload-bearing messages sent over this link.
    pub payloads: u64,
}

impl LinkTally {
    fn add(&mut self, bytes: u32, payload: bool) {
        self.messages += 1;
        self.bytes += u64::from(bytes);
        if payload {
            self.payloads += 1;
        }
    }

    fn absorb(&mut self, other: &LinkTally) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.payloads += other.payloads;
    }
}

/// One logged transmission (16 bytes).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct SendRecord {
    from: u32,
    to: u32,
    bytes: u32,
    payload: bool,
}

/// One partially aggregated link: its tally so far plus the global
/// position of its first record (drives the spill rule at seal time).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct LinkAcc {
    from: u32,
    to: u32,
    first_pos: u64,
    tally: LinkTally,
}

/// Fold the log into the partial aggregate whenever it reaches this many
/// records (64 MB of log), so traffic memory is bounded by the distinct
/// link count plus a constant, not by the total send count of the run.
const COMPACT_AT: usize = 1 << 22;

/// Compaction window in spool mode (16 MB of log): folds stream to disk,
/// so a small window costs no link-memory growth and keeps RSS flat.
const SPOOL_COMPACT_AT: usize = 1 << 20;

/// On-disk size of one spooled [`LinkAcc`] (little-endian fields).
const SPOOL_REC_BYTES: usize = 40;

/// Disk backing for folded link accumulators: each compaction appends one
/// `(from, to)`-sorted run of fixed-width records to a private temp file
/// instead of merging into an in-memory table. Seal time streams the runs
/// back and merges them. The byte stream is a pure function of the
/// recorded sends, so spooling cannot affect results.
#[derive(Debug)]
struct Spool {
    /// Append-only write handle.
    file: std::fs::File,
    /// File path, re-opened for reads and deleted on drop.
    path: PathBuf,
    /// Record count of each flushed run, in write order.
    runs: Vec<u64>,
}

impl Spool {
    fn create(dir: &Path) -> std::io::Result<Spool> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("egm-traffic-{}-{n}.spool", std::process::id()));
        let file = std::fs::File::create(&path)?;
        Ok(Spool {
            file,
            path,
            runs: Vec::new(),
        })
    }
}

impl Drop for Spool {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn encode_acc(acc: &LinkAcc, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&acc.from.to_le_bytes());
    buf.extend_from_slice(&acc.to.to_le_bytes());
    buf.extend_from_slice(&acc.first_pos.to_le_bytes());
    buf.extend_from_slice(&acc.tally.messages.to_le_bytes());
    buf.extend_from_slice(&acc.tally.bytes.to_le_bytes());
    buf.extend_from_slice(&acc.tally.payloads.to_le_bytes());
}

fn decode_acc(rec: &[u8; SPOOL_REC_BYTES]) -> LinkAcc {
    let u32_at = |o: usize| u32::from_le_bytes(rec[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(rec[o..o + 8].try_into().expect("8 bytes"));
    LinkAcc {
        from: u32_at(0),
        to: u32_at(4),
        first_pos: u64_at(8),
        tally: LinkTally {
            messages: u64_at(16),
            bytes: u64_at(24),
            payloads: u64_at(32),
        },
    }
}

/// The aggregated per-link view: one sorted target table per sender.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SealedLinks {
    /// `per_sender[from]` lists `(to, tally)` sorted by `to`, tracked
    /// links only.
    per_sender: Vec<Vec<(NodeId, LinkTally)>>,
    /// Number of individually tracked links.
    tracked: usize,
    /// Aggregate tally of records on links beyond the spill threshold.
    spilled: LinkTally,
}

/// Aggregated traffic over the whole virtual network.
///
/// # Examples
///
/// ```
/// use egm_simnet::{NodeId, Traffic};
///
/// let mut t = Traffic::default();
/// t.record(NodeId(0), NodeId(1), 280, true);
/// t.record(NodeId(0), NodeId(1), 40, false);
/// assert_eq!(t.total_payloads(), 1);
/// assert_eq!(t.total_bytes(), 320);
/// assert_eq!(t.node_payloads_sent(NodeId(0)), 1);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Traffic {
    log: Vec<SendRecord>,
    /// Records folded out of `log` so far (sorted by `(from, to)`); the
    /// log is compacted into this once it reaches `compact_at`.
    folded: Vec<LinkAcc>,
    /// Total records ever logged (global positions for the spill rule).
    records_seen: u64,
    /// Built by [`Traffic::seal`]; `None` while recording.
    sealed: Option<SealedLinks>,
    total: LinkTally,
    /// Payloads sent per node, pre-sized via [`Traffic::reserve_nodes`]
    /// or grown on demand (exact even when link tracking spills).
    node_payloads: Vec<u64>,
    /// Hot-path growths of `node_payloads` (0 when pre-sized — pinned by
    /// a regression test so the O(n) resize never returns to the loop).
    node_payload_growths: u32,
    /// Maximum number of distinct links tracked individually.
    spill_threshold: usize,
    /// Tallies of links already folded into the spilled aggregate by
    /// incremental capping (links first seen after `spill_threshold`
    /// distinct links were live); [`Traffic::finish`] adds this base to
    /// whatever the final pass spills.
    spilled_acc: LinkTally,
    /// Log length that triggers a compaction.
    compact_at: usize,
    /// Writer-backed compaction target; `None` keeps folds in memory.
    spool: Option<Spool>,
    /// Bytes streamed to disk by spool compactions (survives sealing).
    spool_bytes: u64,
    /// Peak accumulator count observed while merging shard parts (0 for
    /// sequential runs and for unbounded thresholds); bounded at
    /// `spill_threshold` by the merge-time capping in
    /// [`Traffic::merge_shards`].
    shard_merge_acc_peak: usize,
}

impl Default for Traffic {
    fn default() -> Self {
        Traffic::with_spill_threshold(usize::MAX)
    }
}

impl Traffic {
    /// Creates an accounting table that tracks at most `spill_threshold`
    /// distinct links individually (in order of first appearance);
    /// records on further links are folded into the aggregate
    /// [`Traffic::spilled`] tally.
    pub fn with_spill_threshold(spill_threshold: usize) -> Self {
        Traffic {
            log: Vec::new(),
            folded: Vec::new(),
            records_seen: 0,
            sealed: None,
            total: LinkTally::default(),
            node_payloads: Vec::new(),
            node_payload_growths: 0,
            spill_threshold,
            spilled_acc: LinkTally::default(),
            compact_at: COMPACT_AT,
            spool: None,
            spool_bytes: 0,
            shard_merge_acc_peak: 0,
        }
    }

    /// Switches compaction to a writer-backed mode: folded link
    /// accumulators are streamed to a private temp file under `dir`
    /// (deleted at seal time or on drop) instead of held in memory, and
    /// the log window shrinks accordingly. Sealed results are
    /// byte-identical to the in-memory mode — the spool is a pure
    /// spill target.
    ///
    /// # Panics
    ///
    /// Panics if recording already started or the file cannot be created.
    pub fn enable_spool(&mut self, dir: &Path) {
        assert!(
            self.records_seen == 0 && self.sealed.is_none(),
            "enable spooling before recording"
        );
        self.spool = Some(Spool::create(dir).expect("create traffic spool file"));
        self.compact_at = SPOOL_COMPACT_AT;
    }

    /// Pre-sizes the per-node payload table for `n` nodes, capping it at
    /// the node count and keeping the hot path free of O(n) regrowth.
    pub fn reserve_nodes(&mut self, n: usize) {
        if self.node_payloads.len() < n {
            self.node_payloads.resize(n, 0);
        }
    }

    /// Bytes of folded link accumulators streamed to the spool file so
    /// far (0 unless [`Traffic::enable_spool`] was used).
    pub fn spool_bytes(&self) -> u64 {
        self.spool_bytes
    }

    /// How often the hot path had to grow the per-node payload table
    /// (0 when [`Traffic::reserve_nodes`] pre-sized it).
    pub fn node_payload_growths(&self) -> u32 {
        self.node_payload_growths
    }

    /// Peak link-accumulator count observed while merging shard parts
    /// (spool read-back included). 0 for sequential runs and for
    /// unbounded spill thresholds; never exceeds the configured threshold
    /// otherwise — pinned by the shard-determinism regression tests.
    pub fn shard_merge_acc_peak(&self) -> usize {
        self.shard_merge_acc_peak
    }

    /// Records one message from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Traffic::seal`] — sealing drops the
    /// record log.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32, payload: bool) {
        assert!(self.sealed.is_none(), "record() after seal()");
        self.total.add(bytes, payload);
        let idx = from.index();
        if payload {
            if idx >= self.node_payloads.len() {
                self.node_payloads.resize(idx + 1, 0);
                self.node_payload_growths += 1;
            }
            self.node_payloads[idx] += 1;
        }
        debug_assert!(idx < u32::MAX as usize && to.index() < u32::MAX as usize);
        self.log.push(SendRecord {
            from: idx as u32,
            to: to.index() as u32,
            bytes,
            payload,
        });
        self.records_seen += 1;
        if self.log.len() >= self.compact_at {
            self.compact();
        }
    }

    /// Folds the log into `folded` (or streams the fold to the spool
    /// file) and clears it (keeping its capacity), bounding traffic
    /// memory over arbitrarily long runs.
    fn compact(&mut self) {
        if self.log.is_empty() {
            return;
        }
        let base = self.records_seen - self.log.len() as u64;
        let flat = Self::flatten(&self.log, base);
        self.log.clear();
        if let Some(spool) = &mut self.spool {
            let mut buf = Vec::with_capacity(flat.len() * SPOOL_REC_BYTES);
            for acc in &flat {
                encode_acc(acc, &mut buf);
            }
            spool.file.write_all(&buf).expect("write traffic spool run");
            spool.runs.push(flat.len() as u64);
            self.spool_bytes += buf.len() as u64;
        } else {
            let merged = Self::merge(std::mem::take(&mut self.folded), flat);
            self.folded = Self::cap(merged, self.spill_threshold, &mut self.spilled_acc);
        }
    }

    /// Applies the spill rule to one `(from, to)`-sorted accumulator
    /// list: keeps the `threshold` earliest-appearing links and folds the
    /// rest into `spilled`. Called after every fold, so the tracked
    /// working set never exceeds `threshold` entries mid-run (see the
    /// module docs for why this is byte-identical to capping at seal).
    fn cap(mut flat: Vec<LinkAcc>, threshold: usize, spilled: &mut LinkTally) -> Vec<LinkAcc> {
        if flat.len() <= threshold {
            return flat;
        }
        let mut order: Vec<u32> = (0..flat.len() as u32).collect();
        order.sort_unstable_by_key(|&i| flat[i as usize].first_pos);
        let mut evict = vec![false; flat.len()];
        for &i in &order[threshold..] {
            evict[i as usize] = true;
            spilled.absorb(&flat[i as usize].tally);
        }
        let mut keep = 0usize;
        for i in 0..flat.len() {
            if !evict[i] {
                flat[keep] = flat[i];
                keep += 1;
            }
        }
        flat.truncate(keep);
        flat
    }

    /// Applies the spill rule with an *externally supplied* link order: a
    /// caller-provided `key_of(from, to)` ranks links instead of their
    /// (possibly shard-local, incomparable) `first_pos`. Used by
    /// [`Traffic::merge_shards`], where the 128-bit first-appearance
    /// order keys provide the global record order.
    fn cap_by_key(
        mut flat: Vec<LinkAcc>,
        threshold: usize,
        spilled: &mut LinkTally,
        key_of: &dyn Fn(u32, u32) -> u128,
    ) -> Vec<LinkAcc> {
        if flat.len() <= threshold {
            return flat;
        }
        let mut order: Vec<u32> = (0..flat.len() as u32).collect();
        order.sort_unstable_by_key(|&i| key_of(flat[i as usize].from, flat[i as usize].to));
        let mut evict = vec![false; flat.len()];
        for &i in &order[threshold..] {
            evict[i as usize] = true;
            spilled.absorb(&flat[i as usize].tally);
        }
        let mut keep = 0usize;
        for i in 0..flat.len() {
            if !evict[i] {
                flat[keep] = flat[i];
                keep += 1;
            }
        }
        flat.truncate(keep);
        flat
    }

    /// Reads the spooled runs back in write order, merging each into
    /// `acc` and applying `cap` after every run so the read-back working
    /// set stays bounded by whatever rule the capper enforces.
    fn read_spool_with(
        spool: &Spool,
        mut acc: Vec<LinkAcc>,
        cap: &mut dyn FnMut(Vec<LinkAcc>) -> Vec<LinkAcc>,
    ) -> Vec<LinkAcc> {
        let file = std::fs::File::open(&spool.path).expect("reopen traffic spool file");
        let mut reader = std::io::BufReader::new(file);
        for &len in &spool.runs {
            let mut run = Vec::with_capacity(len as usize);
            let mut rec = [0u8; SPOOL_REC_BYTES];
            for _ in 0..len {
                reader.read_exact(&mut rec).expect("read traffic spool run");
                run.push(decode_acc(&rec));
            }
            acc = cap(Self::merge(acc, run));
        }
        acc
    }

    /// Reads the spooled runs back and merges them into one
    /// `(from, to)`-sorted accumulator list, capping the working set at
    /// `threshold` links after each run (runs are read in write order, so
    /// the incremental spill rule sees first positions chronologically).
    fn read_spool(spool: &Spool, threshold: usize, spilled: &mut LinkTally) -> Vec<LinkAcc> {
        Self::read_spool_with(spool, Vec::new(), &mut |flat| {
            Self::cap(flat, threshold, spilled)
        })
    }

    /// Compacts, then takes the complete folded accumulator list —
    /// reading back and deleting the spool file if one is attached.
    fn drain_folded(&mut self) -> Vec<LinkAcc> {
        self.compact();
        let mut flat = std::mem::take(&mut self.folded);
        if let Some(spool) = self.spool.take() {
            let runs = Self::read_spool(&spool, self.spill_threshold, &mut self.spilled_acc);
            flat = Self::cap(
                Self::merge(flat, runs),
                self.spill_threshold,
                &mut self.spilled_acc,
            );
            // Dropping the spool deletes its file; spool_bytes persists.
        }
        flat
    }

    /// Like [`Traffic::drain_folded`], but with a caller-supplied capper
    /// applied to the folded list and after every spool run, in place of
    /// this table's own (here: unbounded) spill rule. This is how
    /// [`Traffic::merge_shards`] bounds each shard's spool read-back even
    /// though the shard recorded with an infinite local threshold.
    fn drain_folded_with(
        &mut self,
        cap: &mut dyn FnMut(Vec<LinkAcc>) -> Vec<LinkAcc>,
    ) -> Vec<LinkAcc> {
        self.compact();
        let mut flat = cap(std::mem::take(&mut self.folded));
        if let Some(spool) = self.spool.take() {
            let runs = Self::read_spool_with(&spool, Vec::new(), cap);
            flat = cap(Self::merge(flat, runs));
            // Dropping the spool deletes its file; spool_bytes persists.
        }
        flat
    }

    /// Builds the per-link view once and drops the record log. Optional:
    /// queries aggregate transparently (each call re-scans the log) —
    /// sealing makes repeated queries O(1) and frees the log's memory
    /// (plus any spool file), at the price that no further
    /// [`Traffic::record`] is accepted.
    pub fn seal(&mut self) {
        if self.sealed.is_none() {
            let flat = self.drain_folded();
            self.log = Vec::new();
            self.sealed = Some(Self::finish(flat, self.spill_threshold, self.spilled_acc));
        }
    }

    /// Folds one log chunk into per-link accumulators sorted by
    /// `(from, to)`: counting-sort by sender, sort each sender's slice by
    /// target, group. Tally sums are integer additions, so accumulation
    /// order within a link is irrelevant and the link's first appearance
    /// is simply the minimum position of its group (`base` + local).
    fn flatten(log: &[SendRecord], base: u64) -> Vec<LinkAcc> {
        debug_assert!(log.len() < u32::MAX as usize);
        let senders = log.iter().map(|r| r.from as usize + 1).max().unwrap_or(0);
        // Counting sort: group records by sender (contiguous copies, so
        // the per-sender sorts below stay cache-resident).
        #[derive(Clone, Copy, Default)]
        struct GroupedRec {
            to: u32,
            pos: u32,
            bytes: u32,
            payload: bool,
        }
        let mut offsets = vec![0u32; senders + 1];
        for r in log {
            offsets[r.from as usize + 1] += 1;
        }
        for i in 0..senders {
            offsets[i + 1] += offsets[i];
        }
        let mut grouped = vec![GroupedRec::default(); log.len()];
        let mut cursor: Vec<u32> = offsets[..senders].to_vec();
        for (pos, r) in log.iter().enumerate() {
            let c = &mut cursor[r.from as usize];
            grouped[*c as usize] = GroupedRec {
                to: r.to,
                pos: pos as u32,
                bytes: r.bytes,
                payload: r.payload,
            };
            *c += 1;
        }
        // Per sender: sort by target, then fold each group. The result
        // is ordered by (from, to) with each link's first global
        // position attached.
        let mut flat: Vec<LinkAcc> = Vec::new();
        for from in 0..senders {
            let seg = &mut grouped[offsets[from] as usize..offsets[from + 1] as usize];
            seg.sort_unstable_by_key(|g| g.to);
            for g in seg.iter() {
                match flat.last_mut() {
                    Some(last) if last.from == from as u32 && last.to == g.to => {
                        last.tally.add(g.bytes, g.payload);
                        last.first_pos = last.first_pos.min(base + u64::from(g.pos));
                    }
                    _ => {
                        let mut tally = LinkTally::default();
                        tally.add(g.bytes, g.payload);
                        flat.push(LinkAcc {
                            from: from as u32,
                            to: g.to,
                            first_pos: base + u64::from(g.pos),
                            tally,
                        });
                    }
                }
            }
        }
        flat
    }

    /// Merges two `(from, to)`-sorted accumulator lists, adding tallies
    /// and keeping the earlier first appearance.
    fn merge(a: Vec<LinkAcc>, b: Vec<LinkAcc>) -> Vec<LinkAcc> {
        if a.is_empty() {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut ia, mut ib) = (0, 0);
        while ia < a.len() && ib < b.len() {
            let (ka, kb) = ((a[ia].from, a[ia].to), (b[ib].from, b[ib].to));
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    out.push(a[ia]);
                    ia += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[ib]);
                    ib += 1;
                }
                std::cmp::Ordering::Equal => {
                    let mut m = a[ia];
                    m.first_pos = m.first_pos.min(b[ib].first_pos);
                    m.tally.messages += b[ib].tally.messages;
                    m.tally.bytes += b[ib].tally.bytes;
                    m.tally.payloads += b[ib].tally.payloads;
                    out.push(m);
                    ia += 1;
                    ib += 1;
                }
            }
        }
        out.extend_from_slice(&a[ia..]);
        out.extend_from_slice(&b[ib..]);
        out
    }

    /// Applies the first-appearance spill rule — a link is tracked iff
    /// fewer than `spill_threshold` distinct links appeared before it —
    /// and builds the queryable per-sender view. `spilled_base` carries
    /// the tallies of links already evicted by incremental capping.
    fn finish(flat: Vec<LinkAcc>, spill_threshold: usize, spilled_base: LinkTally) -> SealedLinks {
        let mut spilled = spilled_base;
        let mut tracked_flags: Option<Vec<bool>> = None;
        if flat.len() > spill_threshold {
            let mut order: Vec<u32> = (0..flat.len() as u32).collect();
            order.sort_unstable_by_key(|&i| flat[i as usize].first_pos);
            let mut flags = vec![false; flat.len()];
            for &i in &order[..spill_threshold] {
                flags[i as usize] = true;
            }
            for &i in &order[spill_threshold..] {
                spilled.absorb(&flat[i as usize].tally);
            }
            tracked_flags = Some(flags);
        }
        let senders = flat.iter().map(|l| l.from as usize + 1).max().unwrap_or(0);
        let mut per_sender: Vec<Vec<(NodeId, LinkTally)>> = Vec::new();
        per_sender.resize_with(senders, Vec::new);
        let mut tracked = 0usize;
        for (i, link) in flat.iter().enumerate() {
            if tracked_flags.as_ref().is_some_and(|flags| !flags[i]) {
                continue;
            }
            per_sender[link.from as usize].push((NodeId(link.to as usize), link.tally));
            tracked += 1;
        }
        SealedLinks {
            per_sender,
            tracked,
            spilled,
        }
    }

    /// Merges per-shard traffic tables into the sealed view a sequential
    /// run would produce.
    ///
    /// Each part must still be recording (unsealed) and must have used an
    /// *unbounded* spill threshold, so no link was folded away shard-
    /// locally. Totals, per-node payload counters and per-link tallies
    /// are plain sums (links are disjoint across sender-partitioned
    /// shards, but equal keys merge defensively). The first-appearance
    /// spill rule needs the *global* record order, which shard-local
    /// positions cannot provide — `first_keys` supplies it: per shard, a
    /// map from the packed directed link (`from << 32 | to`) to the
    /// 128-bit order key of the link's first record (see
    /// `SimCore::begin_dispatch`). Ranking links by that key reproduces
    /// the sequential engine's spill selection exactly.
    ///
    /// When the threshold is finite, that key ranking is applied
    /// *incrementally* — to each part's folded list, after every spool
    /// run read back, and after each part merges into the global list —
    /// so the merge-time accumulator working set stays bounded at
    /// `spill_threshold` entries instead of growing to the run's full
    /// distinct-link count. This is byte-identical to capping once at the
    /// end: the `spill_threshold` smallest-key links can only lose
    /// members to links with still smaller keys, so an evicted link
    /// (whose key exceeds every kept key) is evicted again whenever a
    /// later spool run makes it reappear, and its tally lands in the same
    /// spilled aggregate. The observed peak is recorded and exposed via
    /// [`Traffic::shard_merge_acc_peak`].
    ///
    /// # Panics
    ///
    /// Panics if a part was already sealed, or if the spill rule needs
    /// first-appearance keys that were not tracked.
    pub(crate) fn merge_shards(
        parts: Vec<Traffic>,
        first_keys: Vec<Option<egm_rng::hash::FastHashMap<u64, u128>>>,
        spill_threshold: usize,
    ) -> Traffic {
        let mut parts = parts;
        let single = parts.len() == 1;
        // A single part's local record positions already are the global
        // order — the spill rule can use them directly, no keys needed.
        // With several parts and a finite threshold, rank by the global
        // first-appearance keys instead, capping as we go.
        let track = spill_threshold != usize::MAX && !single;
        let key_of = |from: u32, to: u32| -> u128 {
            let packed = (u64::from(from) << 32) | u64::from(to);
            *first_keys
                .iter()
                .flatten()
                .filter_map(|m| m.get(&packed))
                .min()
                .unwrap_or_else(|| {
                    panic!(
                        "link ({from}, {to}) has no first-appearance key: the sharded \
                         engine must track keys whenever the spill threshold is \
                         finite"
                    )
                })
        };
        // Recycle the largest per-shard payload table as the merged one
        // instead of growing a fresh allocation from zero.
        let donor = (0..parts.len())
            .max_by_key(|&i| parts[i].node_payloads.len())
            .expect("at least one shard");
        let mut node_payloads = std::mem::take(&mut parts[donor].node_payloads);
        let mut total = LinkTally::default();
        let mut records_seen = 0u64;
        let mut flat: Vec<LinkAcc> = Vec::new();
        let mut spool_bytes = 0u64;
        let mut node_payload_growths = 0u32;
        let mut spilled_acc = LinkTally::default();
        let mut merge_acc_peak = 0usize;
        for mut part in parts {
            assert!(part.sealed.is_none(), "cannot merge sealed traffic");
            total.messages += part.total.messages;
            total.bytes += part.total.bytes;
            total.payloads += part.total.payloads;
            records_seen += part.records_seen;
            node_payload_growths += part.node_payload_growths;
            if node_payloads.len() < part.node_payloads.len() {
                node_payloads.resize(part.node_payloads.len(), 0);
            }
            for (i, v) in part.node_payloads.iter().enumerate() {
                node_payloads[i] += v;
            }
            let drained = if track {
                let mut cap = |f: Vec<LinkAcc>| {
                    let f = Self::cap_by_key(f, spill_threshold, &mut spilled_acc, &key_of);
                    merge_acc_peak = merge_acc_peak.max(f.len());
                    f
                };
                part.drain_folded_with(&mut cap)
            } else {
                part.drain_folded()
            };
            flat = Self::merge(flat, drained);
            if track {
                flat = Self::cap_by_key(flat, spill_threshold, &mut spilled_acc, &key_of);
                merge_acc_peak = merge_acc_peak.max(flat.len());
            }
            // Shard-local thresholds are unbounded, so parts normally cap
            // nothing themselves — carry their accumulator defensively.
            spilled_acc.absorb(&part.spilled_acc);
            spool_bytes += part.spool_bytes;
        }
        debug_assert!(single || flat.len() <= spill_threshold);
        let sealed = Self::finish(flat, spill_threshold, spilled_acc);
        Traffic {
            log: Vec::new(),
            folded: Vec::new(),
            records_seen,
            sealed: Some(sealed),
            total,
            node_payloads,
            node_payload_growths,
            spill_threshold,
            spilled_acc,
            compact_at: COMPACT_AT,
            spool: None,
            spool_bytes,
            shard_merge_acc_peak: merge_acc_peak,
        }
    }

    /// Runs `f` over the per-link view — the sealed one if available,
    /// otherwise a freshly aggregated snapshot of the folded state plus
    /// the log so far.
    fn with_links<R>(&self, f: impl FnOnce(&SealedLinks) -> R) -> R {
        match &self.sealed {
            Some(s) => f(s),
            None => {
                let mut spilled = self.spilled_acc;
                let base = self.records_seen - self.log.len() as u64;
                let mut flat = Self::merge(self.folded.clone(), Self::flatten(&self.log, base));
                if let Some(spool) = &self.spool {
                    let runs = Self::read_spool(spool, self.spill_threshold, &mut spilled);
                    flat = Self::merge(runs, flat);
                }
                f(&Self::finish(flat, self.spill_threshold, spilled))
            }
        }
    }

    /// Total messages sent (including later-dropped ones).
    pub fn total_messages(&self) -> u64 {
        self.total.messages
    }

    /// Total bytes sent.
    pub fn total_bytes(&self) -> u64 {
        self.total.bytes
    }

    /// Total payload transmissions.
    pub fn total_payloads(&self) -> u64 {
        self.total.payloads
    }

    /// Number of individually tracked directed links that carried at
    /// least one message. When [`Traffic::spilled`] is non-empty this
    /// undercounts the true distinct-link count (by design: tracking is
    /// bounded).
    pub fn link_count(&self) -> usize {
        self.with_links(|s| s.tracked)
    }

    /// Aggregate tally of traffic recorded on links beyond the spill
    /// threshold (all zeros when nothing spilled).
    pub fn spilled(&self) -> LinkTally {
        self.with_links(|s| s.spilled)
    }

    /// Tally for one directed link, if it carried traffic and was tracked
    /// individually.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<LinkTally> {
        self.with_links(|s| {
            let table = s.per_sender.get(from.index())?;
            table
                .binary_search_by_key(&to, |e| e.0)
                .ok()
                .map(|i| table[i].1)
        })
    }

    /// All individually tracked directed links and their tallies, in
    /// deterministic (source, destination) order.
    pub fn links(&self) -> Vec<((NodeId, NodeId), LinkTally)> {
        self.with_links(|s| {
            let mut v = Vec::with_capacity(s.tracked);
            for (from, table) in s.per_sender.iter().enumerate() {
                for &(to, tally) in table {
                    v.push(((NodeId(from), to), tally));
                }
            }
            v
        })
    }

    /// Payload transmissions sent by one node. Exact regardless of link
    /// spill.
    pub fn node_payloads_sent(&self, node: NodeId) -> u64 {
        self.node_payloads.get(node.index()).copied().unwrap_or(0)
    }

    /// Per-node payload transmission counts for nodes `0..n`.
    pub fn payloads_sent_per_node(&self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        let upto = n.min(self.node_payloads.len());
        out[..upto].copy_from_slice(&self.node_payloads[..upto]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::Traffic;
    use crate::NodeId;

    #[test]
    fn records_accumulate_per_link() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 100, true);
        t.record(NodeId(0), NodeId(1), 50, false);
        t.record(NodeId(1), NodeId(0), 10, true);
        let l01 = t.link(NodeId(0), NodeId(1)).expect("link exists");
        assert_eq!(l01.messages, 2);
        assert_eq!(l01.bytes, 150);
        assert_eq!(l01.payloads, 1);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.total_messages(), 3);
        assert_eq!(t.total_payloads(), 2);
        assert!(t.link(NodeId(2), NodeId(0)).is_none());
        assert_eq!(t.spilled().messages, 0, "no spill by default");
    }

    #[test]
    fn links_are_sorted_deterministically() {
        let mut t = Traffic::default();
        t.record(NodeId(2), NodeId(0), 1, false);
        t.record(NodeId(0), NodeId(2), 1, false);
        t.record(NodeId(0), NodeId(1), 1, false);
        let keys: Vec<_> = t.links().iter().map(|&(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(0))
            ]
        );
    }

    #[test]
    fn per_node_payload_counts() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 1, true);
        t.record(NodeId(0), NodeId(2), 1, true);
        t.record(NodeId(1), NodeId(2), 1, false);
        assert_eq!(t.payloads_sent_per_node(3), vec![2, 0, 0]);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 2);
        assert_eq!(t.node_payloads_sent(NodeId(9)), 0);
    }

    #[test]
    fn spill_threshold_bounds_link_tracking() {
        let mut t = Traffic::with_spill_threshold(2);
        t.record(NodeId(0), NodeId(1), 10, true);
        t.record(NodeId(0), NodeId(2), 10, false);
        // Third distinct link spills...
        t.record(NodeId(0), NodeId(3), 10, true);
        // ...but already-tracked links keep accumulating exactly.
        t.record(NodeId(0), NodeId(1), 10, false);
        assert_eq!(t.link_count(), 2);
        assert!(t.link(NodeId(0), NodeId(3)).is_none(), "spilled link");
        assert_eq!(t.spilled().messages, 1);
        assert_eq!(t.spilled().payloads, 1);
        assert_eq!(t.spilled().bytes, 10);
        // Totals and per-node counters stay exact.
        assert_eq!(t.total_messages(), 4);
        assert_eq!(t.total_payloads(), 2);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 2);
        let l01 = t.link(NodeId(0), NodeId(1)).expect("tracked");
        assert_eq!(l01.messages, 2);
    }

    #[test]
    fn zero_threshold_spills_everything() {
        let mut t = Traffic::with_spill_threshold(0);
        t.record(NodeId(0), NodeId(1), 7, true);
        assert_eq!(t.link_count(), 0);
        assert_eq!(t.spilled().messages, 1);
        assert_eq!(t.total_bytes(), 7);
        assert_eq!(t.node_payloads_sent(NodeId(0)), 1);
    }

    #[test]
    fn seal_freezes_the_view_and_queries_agree() {
        let mut t = Traffic::with_spill_threshold(3);
        t.record(NodeId(1), NodeId(0), 5, true);
        t.record(NodeId(0), NodeId(1), 5, false);
        t.record(NodeId(0), NodeId(2), 5, false);
        t.record(NodeId(2), NodeId(1), 5, true); // spilled (4th link)
        let before = (t.links(), t.link_count(), t.spilled());
        t.seal();
        t.seal(); // idempotent
        assert_eq!(before.0, t.links());
        assert_eq!(before.1, t.link_count());
        assert_eq!(before.2, t.spilled());
        assert_eq!(t.spilled().messages, 1);
    }

    #[test]
    #[should_panic(expected = "after seal")]
    fn recording_after_seal_panics() {
        let mut t = Traffic::default();
        t.record(NodeId(0), NodeId(1), 1, false);
        t.seal();
        t.record(NodeId(0), NodeId(2), 1, false);
    }

    #[test]
    fn compaction_preserves_queries_and_spill_order() {
        // Two identical record streams; `b` folds its log mid-stream.
        // Every query and the sealed view must agree with the
        // never-compacted twin, including which link spills.
        let stream = [(5, 6), (4, 5), (0, 1), (5, 6), (0, 2), (4, 5)];
        let mut a = Traffic::with_spill_threshold(2);
        let mut b = Traffic::with_spill_threshold(2);
        for (i, &(f, t)) in stream.iter().enumerate() {
            a.record(NodeId(f), NodeId(t), 10, i % 2 == 0);
            b.record(NodeId(f), NodeId(t), 10, i % 2 == 0);
            if i % 2 == 0 {
                b.compact();
            }
        }
        assert_eq!(a.links(), b.links());
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.spilled(), b.spilled());
        b.seal();
        assert_eq!(a.links(), b.links());
        assert_eq!(a.spilled(), b.spilled());
        assert!(
            b.link(NodeId(0), NodeId(1)).is_none(),
            "third-seen link spills on both"
        );
    }

    #[test]
    fn spooled_traffic_matches_in_memory_twin() {
        // Identical streams, one spooling folds to disk with forced
        // mid-stream compactions: every query and the sealed view must be
        // byte-identical, including the spill selection.
        let dir = std::env::temp_dir();
        let stream = [(5, 6), (4, 5), (0, 1), (5, 6), (0, 2), (4, 5), (1, 0)];
        let mut mem = Traffic::with_spill_threshold(2);
        let mut disk = Traffic::with_spill_threshold(2);
        disk.enable_spool(&dir);
        for (i, &(f, t)) in stream.iter().enumerate() {
            mem.record(NodeId(f), NodeId(t), 10, i % 2 == 0);
            disk.record(NodeId(f), NodeId(t), 10, i % 2 == 0);
            if i % 3 == 0 {
                disk.compact();
            }
        }
        assert!(disk.spool_bytes() > 0, "compactions streamed to disk");
        // Pre-seal queries read the spool transparently.
        assert_eq!(mem.links(), disk.links());
        assert_eq!(mem.spilled(), disk.spilled());
        mem.seal();
        disk.seal();
        assert_eq!(mem.links(), disk.links());
        assert_eq!(mem.link_count(), disk.link_count());
        assert_eq!(mem.spilled(), disk.spilled());
        assert_eq!(mem.total_messages(), disk.total_messages());
        let bytes = disk.spool_bytes();
        assert!(bytes > 0, "spool byte counter survives sealing");
    }

    #[test]
    fn spool_file_is_deleted_at_seal() {
        let dir = std::env::temp_dir();
        let mut t = Traffic::default();
        t.enable_spool(&dir);
        t.record(NodeId(0), NodeId(1), 1, true);
        t.compact();
        let path = t.spool.as_ref().expect("spooling").path.clone();
        assert!(path.exists(), "spool file present while recording");
        t.seal();
        assert!(!path.exists(), "seal() removes the spool file");
        assert!(t.spool.is_none());
    }

    #[test]
    fn reserved_payload_table_never_regrows() {
        let mut t = Traffic::default();
        t.reserve_nodes(100);
        for i in 0..100 {
            t.record(NodeId(i), NodeId((i + 1) % 100), 8, true);
        }
        assert_eq!(t.node_payload_growths(), 0, "pre-sized table is final");
        assert_eq!(t.node_payloads_sent(NodeId(0)), 1);

        let mut untracked = Traffic::default();
        untracked.record(NodeId(5), NodeId(0), 8, true);
        assert_eq!(
            untracked.node_payload_growths(),
            1,
            "on-demand growth counted"
        );
    }

    #[test]
    fn merge_shards_caps_working_set_and_matches_sequential() {
        use egm_rng::hash::FastHashMap;
        // Two sender-partitioned parts recording with unbounded local
        // thresholds; global first-appearance order comes from the key
        // maps: (1,9) then (0,1) then (0,2) then (1,8) then (0,3).
        let mut part0 = Traffic::with_spill_threshold(usize::MAX);
        part0.record(NodeId(0), NodeId(1), 10, true);
        part0.record(NodeId(0), NodeId(2), 10, false);
        part0.record(NodeId(0), NodeId(3), 10, true);
        let mut part1 = Traffic::with_spill_threshold(usize::MAX);
        part1.record(NodeId(1), NodeId(9), 10, false);
        part1.record(NodeId(1), NodeId(8), 10, true);
        let pack = |f: u64, t: u64| (f << 32) | t;
        let mut k0 = FastHashMap::<u64, u128>::default();
        k0.insert(pack(0, 1), 2);
        k0.insert(pack(0, 2), 3);
        k0.insert(pack(0, 3), 5);
        let mut k1 = FastHashMap::<u64, u128>::default();
        k1.insert(pack(1, 9), 1);
        k1.insert(pack(1, 8), 4);
        let merged = Traffic::merge_shards(vec![part0, part1], vec![Some(k0), Some(k1)], 2);
        // Sequential twin: same records in global order, same threshold.
        let mut seq = Traffic::with_spill_threshold(2);
        seq.record(NodeId(1), NodeId(9), 10, false);
        seq.record(NodeId(0), NodeId(1), 10, true);
        seq.record(NodeId(0), NodeId(2), 10, false);
        seq.record(NodeId(1), NodeId(8), 10, true);
        seq.record(NodeId(0), NodeId(3), 10, true);
        seq.seal();
        assert_eq!(merged.links(), seq.links());
        assert_eq!(merged.link_count(), seq.link_count());
        assert_eq!(merged.spilled(), seq.spilled());
        assert_eq!(merged.total_messages(), seq.total_messages());
        let peak = merged.shard_merge_acc_peak();
        assert!(peak > 0 && peak <= 2, "peak {peak} exceeds threshold");
        assert_eq!(seq.shard_merge_acc_peak(), 0, "sequential never merges");
    }

    #[test]
    fn merge_shards_caps_spool_read_back_with_reappearing_links() {
        use egm_rng::hash::FastHashMap;
        // Part 0 spools two runs; link (0,3) is evicted while reading run
        // 1 back and reappears in run 2, so it must be evicted again with
        // both tally pieces landing in the spilled aggregate.
        let dir = std::env::temp_dir();
        let mut part0 = Traffic::with_spill_threshold(usize::MAX);
        part0.enable_spool(&dir);
        part0.record(NodeId(0), NodeId(1), 1, false);
        part0.record(NodeId(0), NodeId(2), 1, false);
        part0.record(NodeId(0), NodeId(3), 1, false);
        part0.compact();
        part0.record(NodeId(0), NodeId(1), 1, false);
        part0.record(NodeId(0), NodeId(3), 1, false);
        part0.compact();
        let mut part1 = Traffic::with_spill_threshold(usize::MAX);
        part1.record(NodeId(1), NodeId(5), 1, false);
        let pack = |f: u64, t: u64| (f << 32) | t;
        let mut k0 = FastHashMap::<u64, u128>::default();
        k0.insert(pack(0, 1), 10);
        k0.insert(pack(0, 2), 20);
        k0.insert(pack(0, 3), 30);
        let mut k1 = FastHashMap::<u64, u128>::default();
        k1.insert(pack(1, 5), 40);
        let merged = Traffic::merge_shards(vec![part0, part1], vec![Some(k0), Some(k1)], 2);
        let mut seq = Traffic::with_spill_threshold(2);
        for (f, t) in [(0, 1), (0, 2), (0, 3), (1, 5), (0, 1), (0, 3)] {
            seq.record(NodeId(f), NodeId(t), 1, false);
        }
        seq.seal();
        assert_eq!(merged.links(), seq.links());
        assert_eq!(merged.spilled(), seq.spilled());
        assert_eq!(merged.spilled().messages, 3, "(0,3) twice plus (1,5)");
        let peak = merged.shard_merge_acc_peak();
        assert!(peak > 0 && peak <= 2, "peak {peak} exceeds threshold");
    }

    #[test]
    fn spill_rule_is_first_appearance_order() {
        // The link first seen third spills even though it is
        // lexicographically smallest.
        let mut t = Traffic::with_spill_threshold(2);
        t.record(NodeId(5), NodeId(6), 1, false);
        t.record(NodeId(4), NodeId(5), 1, false);
        t.record(NodeId(0), NodeId(1), 1, false);
        assert!(t.link(NodeId(5), NodeId(6)).is_some());
        assert!(t.link(NodeId(4), NodeId(5)).is_some());
        assert!(t.link(NodeId(0), NodeId(1)).is_none(), "third link spills");
        assert_eq!(t.spilled().messages, 1);
    }
}
