//! Shuffle wire messages.

use egm_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// A membership shuffle exchange (Cyclon-style).
///
/// A node periodically offers a random subset of its view (including its
/// own id) to a random neighbor, which answers with a subset of its own
/// view; both sides merge what they learn. These are control messages —
/// the embedding node's [`egm_simnet::Wire`] implementation reports them
/// as non-payload so they never count toward the paper's payload/msg
/// metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShuffleMsg {
    /// Offer of view entries; the receiver should reply.
    Request {
        /// Peer ids offered to the partner (includes the sender's id).
        entries: Vec<NodeId>,
    },
    /// Answer carrying the partner's view entries.
    Reply {
        /// Peer ids offered back.
        entries: Vec<NodeId>,
    },
}

impl ShuffleMsg {
    /// Number of peer entries carried.
    pub fn entry_count(&self) -> usize {
        match self {
            ShuffleMsg::Request { entries } | ShuffleMsg::Reply { entries } => entries.len(),
        }
    }

    /// Approximate wire size in bytes (8 bytes per entry + 4 byte tag).
    pub fn wire_bytes(&self) -> u32 {
        4 + 8 * self.entry_count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::ShuffleMsg;
    use egm_simnet::NodeId;

    #[test]
    fn entry_count_and_size() {
        let req = ShuffleMsg::Request {
            entries: vec![NodeId(1), NodeId(2)],
        };
        assert_eq!(req.entry_count(), 2);
        assert_eq!(req.wire_bytes(), 20);
        let reply = ShuffleMsg::Reply { entries: vec![] };
        assert_eq!(reply.entry_count(), 0);
        assert_eq!(reply.wire_bytes(), 4);
    }
}
