//! Peer sampling service: partial-view membership with periodic shuffle.
//!
//! The paper's gossip layer assumes a peer sampling service \[10\] that
//! returns a uniform sample of `f` other nodes (`PeerSample(f)`, Fig. 2),
//! implemented in its testbed by NeEM's overlay management with *overlay
//! fanout 15* and periodic shuffling of peers with neighbors (§5.2, §6.1).
//!
//! This crate provides [`PartialView`], a bounded view of the overlay with
//! a Cyclon-style shuffle: each node periodically exchanges a random subset
//! of its view with a random neighbor, keeping the overlay a continuously
//! re-randomized connected graph. The embedding protocol (the `egm-core`
//! node) drives the view with a timer and routes [`ShuffleMsg`]s; tests and
//! deterministic experiments may instead freeze the overlay with
//! [`PartialView::set_static`].
//!
//! # Examples
//!
//! ```
//! use egm_membership::{bootstrap_views, ViewConfig};
//! use egm_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(1);
//! let mut views = bootstrap_views(10, &ViewConfig::default(), &mut rng);
//! let sample = views[0].sample(&mut rng, 3);
//! assert_eq!(sample.len(), 3);
//! assert!(!sample.contains(&egm_simnet::NodeId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shuffle;
mod view;

pub use shuffle::ShuffleMsg;
pub use view::{bootstrap_views, PartialView, ViewConfig};
