//! The bounded partial view and uniform peer sampling.

use crate::shuffle::ShuffleMsg;
use egm_rng::{sample, Rng};
use egm_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration of the partial view.
///
/// The paper uses an *overlay fanout* of 15 (§5.2): with 200 nodes this
/// yields probability 0.999 of overlay connectedness under 15 % node
/// failures \[6\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewConfig {
    /// Maximum number of peers kept in the view (overlay fanout).
    pub capacity: usize,
    /// Number of view entries exchanged per shuffle.
    pub shuffle_size: usize,
}

impl Default for ViewConfig {
    fn default() -> Self {
        ViewConfig {
            capacity: 15,
            shuffle_size: 5,
        }
    }
}

/// A bounded, continuously shuffled partial view of the overlay.
///
/// Invariants (checked in debug builds and by property tests):
/// the view never contains the owning node or duplicates, and never
/// exceeds `capacity`.
///
/// The shuffle path is allocation-free in steady state: subset sampling
/// draws into an owned index scratch buffer, and the `Vec` carried by
/// each [`ShuffleMsg`] is recycled — a handled request's buffer becomes
/// the reply's, a handled reply's buffer becomes the next outgoing
/// request's. Equality ignores the scratch state (see the manual
/// `PartialEq`), and so must any future serialization (the serde marker
/// impls below are written by hand so a real-serde migration is forced
/// to decide the field set rather than silently deriving the scratch
/// buffers into the wire format).
///
/// # Examples
///
/// ```
/// use egm_membership::{PartialView, ViewConfig};
/// use egm_rng::Rng;
/// use egm_simnet::NodeId;
///
/// let mut rng = Rng::seed_from_u64(3);
/// let mut view = PartialView::new(NodeId(0), ViewConfig::default());
/// view.insert(NodeId(1));
/// view.insert(NodeId(2));
/// let peers = view.sample(&mut rng, 2);
/// assert_eq!(peers.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: NodeId,
    config: ViewConfig,
    peers: Vec<NodeId>,
    static_view: bool,
    /// Scratch for subset-index sampling (never observable; excluded
    /// from equality).
    idx_scratch: Vec<usize>,
    /// Recycled entry buffer for the next outgoing shuffle message
    /// (never observable; excluded from equality).
    spare: Vec<NodeId>,
}

// Hand-written marker impls (the vendored serde is attribute-free): a
// real-serde swap must serialize only the logical fields — owner,
// config, peers, static_view — never the scratch buffers.
impl Serialize for PartialView {}
impl<'de> Deserialize<'de> for PartialView {}

impl PartialEq for PartialView {
    fn eq(&self, other: &Self) -> bool {
        self.owner == other.owner
            && self.config == other.config
            && self.peers == other.peers
            && self.static_view == other.static_view
    }
}

impl Eq for PartialView {}

impl PartialView {
    /// Creates an empty view owned by `owner`.
    pub fn new(owner: NodeId, config: ViewConfig) -> Self {
        PartialView {
            owner,
            config,
            peers: Vec::with_capacity(config.capacity),
            static_view: false,
            idx_scratch: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Current peers, in internal order.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Number of peers currently known.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Whether `peer` is in the view.
    pub fn contains(&self, peer: NodeId) -> bool {
        self.peers.contains(&peer)
    }

    /// Freezes the view: shuffle ticks become no-ops. Used for
    /// deterministic experiments over a fixed random overlay.
    pub fn set_static(&mut self, on: bool) {
        self.static_view = on;
    }

    /// Whether the view is frozen.
    pub fn is_static(&self) -> bool {
        self.static_view
    }

    /// Inserts a peer, evicting a random entry if at capacity.
    ///
    /// Inserting the owner or an existing peer is a no-op. Returns whether
    /// the peer is in the view afterwards.
    pub fn insert(&mut self, peer: NodeId) -> bool {
        if peer == self.owner {
            return false;
        }
        if self.peers.contains(&peer) {
            return true;
        }
        if self.peers.len() < self.config.capacity {
            self.peers.push(peer);
        } else {
            // Deterministic eviction of the oldest entry keeps the insert
            // path RNG-free; shuffling provides the randomness.
            self.peers.remove(0);
            self.peers.push(peer);
        }
        true
    }

    /// Removes a peer (e.g. one detected as failed). Returns whether it was
    /// present.
    pub fn remove(&mut self, peer: NodeId) -> bool {
        if let Some(pos) = self.peers.iter().position(|&p| p == peer) {
            self.peers.remove(pos);
            true
        } else {
            false
        }
    }

    /// `PeerSample(f)`: a uniform sample of up to `f` distinct peers.
    ///
    /// Returns fewer than `f` peers when the view is smaller than `f`.
    pub fn sample(&self, rng: &mut Rng, f: usize) -> Vec<NodeId> {
        let k = f.min(self.peers.len());
        if k == 0 {
            return Vec::new();
        }
        sample::distinct_indices(rng, self.peers.len(), k)
            .into_iter()
            .map(|i| self.peers[i])
            .collect()
    }

    /// `PeerSample(f)` into caller-owned buffers: draws the same peers
    /// (and consumes the same RNG stream) as [`PartialView::sample`],
    /// but reuses `idx_scratch` and `out` instead of allocating. This is
    /// the gossip layer's per-forward path, so it must stay
    /// allocation-free.
    pub fn sample_into(
        &self,
        rng: &mut Rng,
        f: usize,
        idx_scratch: &mut Vec<usize>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        let k = f.min(self.peers.len());
        if k == 0 {
            return;
        }
        sample::distinct_indices_into(rng, self.peers.len(), k, idx_scratch);
        out.extend(idx_scratch.iter().map(|&i| self.peers[i]));
    }

    /// One uniformly chosen peer, if any.
    pub fn sample_one(&self, rng: &mut Rng) -> Option<NodeId> {
        sample::choose(rng, &self.peers).copied()
    }

    /// Initiates a shuffle: picks a random partner and a subset to offer.
    ///
    /// Returns `None` if the view is static or empty. The offered subset
    /// includes the owner id so the partner learns about us (Cyclon-style).
    /// The entry buffer is recycled from the last handled reply, so in
    /// steady state this allocates nothing.
    pub fn start_shuffle(&mut self, rng: &mut Rng) -> Option<(NodeId, ShuffleMsg)> {
        if self.static_view || self.peers.is_empty() {
            return None;
        }
        let partner = *sample::choose(rng, &self.peers).expect("non-empty view");
        let mut offer = std::mem::take(&mut self.spare);
        self.subset_excluding_into(rng, partner, &mut offer);
        offer.truncate(self.config.shuffle_size.saturating_sub(1));
        offer.push(self.owner);
        Some((partner, ShuffleMsg::Request { entries: offer }))
    }

    /// Handles a shuffle message from `from`; returns a reply to send, if
    /// any. The incoming message's entry buffer is kept as the spare for
    /// the next outgoing message, so a request→reply exchange allocates
    /// nothing in steady state.
    pub fn handle_shuffle(
        &mut self,
        rng: &mut Rng,
        from: NodeId,
        msg: ShuffleMsg,
    ) -> Option<(NodeId, ShuffleMsg)> {
        match msg {
            ShuffleMsg::Request { entries } => {
                let mut reply = std::mem::take(&mut self.spare);
                self.subset_excluding_into(rng, from, &mut reply);
                reply.truncate(self.config.shuffle_size);
                self.merge(&entries);
                // Requests also teach us about the requester.
                self.insert(from);
                self.recycle(entries);
                Some((from, ShuffleMsg::Reply { entries: reply }))
            }
            ShuffleMsg::Reply { entries } => {
                self.merge(&entries);
                self.recycle(entries);
                None
            }
        }
    }

    /// Keeps a consumed message buffer for the next outgoing message.
    fn recycle(&mut self, mut entries: Vec<NodeId>) {
        if entries.capacity() > self.spare.capacity() {
            entries.clear();
            self.spare = entries;
        }
    }

    fn subset_excluding_into(&mut self, rng: &mut Rng, excluded: NodeId, out: &mut Vec<NodeId>) {
        // Sample over a *virtual* filtered sequence instead of
        // materializing it: index `i` of peers-minus-excluded maps back
        // to `peers` by skipping the excluded position. Same RNG draws
        // and same result as filtering first; the index scratch and the
        // output buffer are both reused, so the shuffle path performs no
        // allocation once the buffers have grown to shuffle size.
        out.clear();
        let pos = self.peers.iter().position(|&p| p == excluded);
        let n = self.peers.len() - usize::from(pos.is_some());
        if n == 0 {
            return;
        }
        let k = self.config.shuffle_size.min(n);
        sample::distinct_indices_into(rng, n, k, &mut self.idx_scratch);
        out.extend(self.idx_scratch.iter().map(|&i| {
            let i = match pos {
                Some(p) if i >= p => i + 1,
                _ => i,
            };
            self.peers[i]
        }));
    }

    fn merge(&mut self, entries: &[NodeId]) {
        for &p in entries {
            self.insert(p);
        }
        debug_assert!(self.peers.len() <= self.config.capacity);
        debug_assert!(!self.peers.contains(&self.owner));
    }
}

/// Builds a bootstrapped overlay: every node gets a uniform random view of
/// `capacity` distinct peers (or `n - 1` if smaller), as after a completed
/// join protocol.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn bootstrap_views(n: usize, config: &ViewConfig, rng: &mut Rng) -> Vec<PartialView> {
    assert!(n > 0, "need at least one node");
    let mut idx_scratch = Vec::new();
    (0..n)
        .map(|i| {
            let mut view = PartialView::new(NodeId(i), *config);
            let k = config.capacity.min(n.saturating_sub(1));
            // Sample k distinct peers from 0..n-1 excluding i by index
            // remapping: indices >= i shift up by one. One shared index
            // buffer serves all n draws (same index sequence as the
            // allocating variant).
            if k > 0 {
                sample::distinct_indices_into(rng, n - 1, k, &mut idx_scratch);
                for &idx in &idx_scratch {
                    let peer = if idx >= i { idx + 1 } else { idx };
                    view.insert(NodeId(peer));
                }
            }
            view
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::{bootstrap_views, PartialView, ViewConfig};
    use crate::shuffle::ShuffleMsg;
    use egm_rng::Rng;
    use egm_simnet::NodeId;
    use std::collections::HashSet;

    fn cfg(capacity: usize, shuffle: usize) -> ViewConfig {
        ViewConfig {
            capacity,
            shuffle_size: shuffle,
        }
    }

    #[test]
    fn insert_rejects_owner_and_duplicates() {
        let mut v = PartialView::new(NodeId(0), cfg(3, 2));
        assert!(!v.insert(NodeId(0)));
        assert!(v.insert(NodeId(1)));
        assert!(v.insert(NodeId(1)));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn insert_evicts_oldest_at_capacity() {
        let mut v = PartialView::new(NodeId(0), cfg(2, 2));
        v.insert(NodeId(1));
        v.insert(NodeId(2));
        v.insert(NodeId(3));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId(1)), "oldest entry evicted");
        assert!(v.contains(NodeId(2)) && v.contains(NodeId(3)));
    }

    #[test]
    fn remove_reports_presence() {
        let mut v = PartialView::new(NodeId(0), cfg(4, 2));
        v.insert(NodeId(5));
        assert!(v.remove(NodeId(5)));
        assert!(!v.remove(NodeId(5)));
        assert!(v.is_empty());
    }

    #[test]
    fn sample_is_distinct_and_never_owner() {
        let mut rng = Rng::seed_from_u64(1);
        let mut v = PartialView::new(NodeId(0), cfg(10, 3));
        for i in 1..=10 {
            v.insert(NodeId(i));
        }
        for _ in 0..100 {
            let s = v.sample(&mut rng, 4);
            assert_eq!(s.len(), 4);
            let set: HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 4);
            assert!(!s.contains(&NodeId(0)));
        }
        // Sampling more than view size returns the whole view.
        assert_eq!(v.sample(&mut rng, 50).len(), 10);
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(2);
        let mut v = PartialView::new(NodeId(0), cfg(10, 3));
        for i in 1..=10 {
            v.insert(NodeId(i));
        }
        let mut counts = [0usize; 11];
        for _ in 0..10_000 {
            for p in v.sample(&mut rng, 1) {
                counts[p.index()] += 1;
            }
        }
        for &c in &counts[1..] {
            let frac = c as f64 / 10_000.0;
            assert!((frac - 0.1).abs() < 0.03, "peer frequency {frac}");
        }
    }

    #[test]
    fn shuffle_request_reply_cycle_preserves_invariants() {
        let mut rng = Rng::seed_from_u64(3);
        let mut a = PartialView::new(NodeId(0), cfg(5, 3));
        let mut b = PartialView::new(NodeId(1), cfg(5, 3));
        for i in 2..6 {
            a.insert(NodeId(i));
        }
        for i in 6..10 {
            b.insert(NodeId(i));
        }
        a.insert(NodeId(1));
        let (to, req) = a.start_shuffle(&mut rng).expect("view non-empty");
        assert!(a.contains(to));
        let (back, reply) = b.handle_shuffle(&mut rng, NodeId(0), req).expect("reply");
        assert_eq!(back, NodeId(0));
        assert!(a.handle_shuffle(&mut rng, NodeId(1), reply).is_none());
        for v in [&a, &b] {
            assert!(v.len() <= 5);
            assert!(!v.contains(v.owner()));
            let set: HashSet<_> = v.peers().iter().collect();
            assert_eq!(set.len(), v.len(), "no duplicates");
        }
        // b learned about a through the request's self-entry.
        assert!(b.contains(NodeId(0)));
    }

    #[test]
    fn static_view_never_shuffles() {
        let mut rng = Rng::seed_from_u64(4);
        let mut v = PartialView::new(NodeId(0), cfg(5, 3));
        v.insert(NodeId(1));
        v.set_static(true);
        assert!(v.is_static());
        assert!(v.start_shuffle(&mut rng).is_none());
    }

    #[test]
    fn empty_view_cannot_shuffle_or_sample() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v = PartialView::new(NodeId(0), cfg(5, 3));
        assert!(v.start_shuffle(&mut rng).is_none());
        assert!(v.sample(&mut rng, 3).is_empty());
        assert!(v.sample_one(&mut rng).is_none());
    }

    #[test]
    fn bootstrap_views_are_full_and_valid() {
        let mut rng = Rng::seed_from_u64(6);
        let views = bootstrap_views(30, &cfg(15, 5), &mut rng);
        assert_eq!(views.len(), 30);
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.len(), 15);
            assert!(!v.contains(NodeId(i)));
            let set: HashSet<_> = v.peers().iter().collect();
            assert_eq!(set.len(), 15);
            assert!(v.peers().iter().all(|p| p.index() < 30));
        }
    }

    #[test]
    fn bootstrap_small_network_views_are_complete() {
        let mut rng = Rng::seed_from_u64(7);
        let views = bootstrap_views(3, &cfg(15, 5), &mut rng);
        for v in &views {
            assert_eq!(v.len(), 2, "everyone knows everyone in a 3-node net");
        }
    }

    #[test]
    fn shuffle_reply_subset_excludes_requester() {
        // The reply must never offer the requester its own id.
        let mut rng = Rng::seed_from_u64(8);
        let mut b = PartialView::new(NodeId(1), cfg(5, 5));
        b.insert(NodeId(0));
        b.insert(NodeId(2));
        let (_, reply) = b
            .handle_shuffle(&mut rng, NodeId(0), ShuffleMsg::Request { entries: vec![] })
            .expect("reply");
        match reply {
            ShuffleMsg::Reply { entries } => {
                assert!(
                    !entries.contains(&NodeId(0)),
                    "reply leaks requester id back"
                );
            }
            _ => panic!("expected reply"),
        }
    }
}
