//! Shuffle dynamics over time: the overlay keeps mixing while preserving
//! its invariants.

use egm_membership::{bootstrap_views, PartialView, ViewConfig};
use egm_rng::Rng;
use egm_simnet::NodeId;
use std::collections::HashSet;

/// Drives `rounds` of random shuffles directly (request + reply), as the
/// simulator would, and returns the evolved views.
fn shuffle_rounds(mut views: Vec<PartialView>, rounds: usize, rng: &mut Rng) -> Vec<PartialView> {
    let n = views.len();
    for _ in 0..rounds {
        let initiator = rng.range_usize(0, n);
        let Some((partner, request)) = views[initiator].start_shuffle(rng) else {
            continue;
        };
        let reply = views[partner.index()].handle_shuffle(rng, NodeId(initiator), request);
        if let Some((back, msg)) = reply {
            views[back.index()].handle_shuffle(rng, partner, msg);
        }
    }
    views
}

#[test]
fn long_shuffling_preserves_invariants() {
    let mut rng = Rng::seed_from_u64(1);
    let config = ViewConfig {
        capacity: 8,
        shuffle_size: 4,
    };
    let views = bootstrap_views(40, &config, &mut rng);
    let views = shuffle_rounds(views, 5000, &mut rng);
    for (i, v) in views.iter().enumerate() {
        assert!(v.len() <= 8);
        assert!(!v.contains(NodeId(i)), "node {i} contains itself");
        let set: HashSet<_> = v.peers().iter().collect();
        assert_eq!(set.len(), v.len(), "duplicates at node {i}");
        assert!(v.peers().iter().all(|p| p.index() < 40));
    }
}

#[test]
fn shuffling_changes_views_over_time() {
    let mut rng = Rng::seed_from_u64(2);
    let config = ViewConfig {
        capacity: 8,
        shuffle_size: 4,
    };
    let initial = bootstrap_views(30, &config, &mut rng);
    let snapshot: Vec<Vec<NodeId>> = initial.iter().map(|v| v.peers().to_vec()).collect();
    let evolved = shuffle_rounds(initial, 2000, &mut rng);
    let changed = evolved
        .iter()
        .zip(&snapshot)
        .filter(|(v, old)| {
            let now: HashSet<_> = v.peers().iter().collect();
            let before: HashSet<_> = old.iter().collect();
            now != before
        })
        .count();
    assert!(
        changed > 20,
        "only {changed}/30 views changed after 2000 shuffles"
    );
}

#[test]
fn shuffled_overlay_remains_weakly_connected() {
    // Union of view edges (undirected) should form one connected component
    // after heavy shuffling — the property that keeps gossip reliable.
    let mut rng = Rng::seed_from_u64(3);
    let config = ViewConfig {
        capacity: 8,
        shuffle_size: 4,
    };
    let views = shuffle_rounds(bootstrap_views(50, &config, &mut rng), 5000, &mut rng);
    let n = views.len();
    let mut adj = vec![Vec::new(); n];
    for (i, v) in views.iter().enumerate() {
        for p in v.peers() {
            adj[i].push(p.index());
            adj[p.index()].push(i);
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for &u in &adj[v] {
            if !seen[u] {
                seen[u] = true;
                count += 1;
                stack.push(u);
            }
        }
    }
    assert_eq!(count, n, "overlay fell apart after shuffling");
}

#[test]
fn coverage_spreads_through_shuffles() {
    // A node initially knowing few peers learns about many distinct nodes
    // over time through shuffling.
    let mut rng = Rng::seed_from_u64(4);
    let config = ViewConfig {
        capacity: 6,
        shuffle_size: 3,
    };
    let mut views = bootstrap_views(40, &config, &mut rng);
    let mut met: HashSet<NodeId> = views[0].peers().iter().copied().collect();
    for _ in 0..3000 {
        let initiator = rng.range_usize(0, 40);
        let Some((partner, request)) = views[initiator].start_shuffle(&mut rng) else {
            continue;
        };
        let reply = views[partner.index()].handle_shuffle(&mut rng, NodeId(initiator), request);
        if let Some((back, msg)) = reply {
            views[back.index()].handle_shuffle(&mut rng, partner, msg);
        }
        met.extend(views[0].peers().iter().copied());
    }
    assert!(
        met.len() > 25,
        "node 0 met only {} distinct peers over 3000 shuffles",
        met.len()
    );
}
