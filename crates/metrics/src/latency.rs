//! Log-bucketed, mergeable latency histogram for sustained-load runs.
//!
//! The open-loop workload axis records one publish→delivery latency per
//! (message, node) pair — at the 100k/1M presets that is far too many
//! samples to keep as a `Vec<f64>`. [`LatencyHistogram`] stores them in
//! O(1) memory instead: a fixed array of power-of-two groups, each split
//! into 32 linear sub-buckets (hdrhistogram-style), giving a worst-case
//! relative quantile error of 1/32 ≈ 3.1 %.
//!
//! All state is integer counters, so [`LatencyHistogram::merge`] is plain
//! counter addition: commutative and associative. Shards can each record
//! locally and merge in any order without changing a single reported
//! quantile — which is what keeps `ShardedSim` runs byte-identical to
//! sequential ones.
//!
//! # Examples
//!
//! ```
//! use egm_metrics::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for ms in [1.0, 2.0, 3.0, 100.0] {
//!     h.record_ms(ms);
//! }
//! assert_eq!(h.total(), 4);
//! assert!(h.p50_ms() >= 2.0);
//! assert!(h.p99_ms() >= 100.0);
//! ```

/// Number of low-order bits of linear resolution per power-of-two group.
const SUB_BITS: u32 = 5;
/// Sub-buckets per group (`2^SUB_BITS`).
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range in microseconds.
///
/// Values below `SUB` get one exact bucket each; a value with most
/// significant bit `m >= SUB_BITS` lands in group `m - SUB_BITS` at index
/// `(m - SUB_BITS) * SUB + (v >> (m - SUB_BITS))`, which for `m = 63`
/// tops out just below `(64 - SUB_BITS - 1 + 2) * SUB`.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Returns the bucket index for a latency of `v` microseconds.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let shift = msb - SUB_BITS as usize;
    shift * SUB + (v >> shift) as usize
}

/// Returns the inclusive upper bound (in microseconds) of bucket `idx`.
///
/// Quantiles report this bound, so they never under-estimate a latency by
/// more than the bucket's width (≤ 1/32 of its value).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let group = idx / SUB - 1;
    let sub = (idx - group * SUB) as u64;
    // The very top bucket's bound is 2^64; wrapping_sub yields u64::MAX.
    ((sub + 1) << group).wrapping_sub(1)
}

/// A log-bucketed latency histogram with O(1) memory and exact merging.
///
/// Latencies are recorded in whole microseconds. Buckets below 32 µs are
/// exact; above that, each power-of-two range is split into 32 linear
/// sub-buckets. Count, sum, min, and max are tracked exactly, so
/// [`mean_ms`](Self::mean_ms) and [`max_ms`](Self::max_ms) carry no
/// bucketing error — only the interior quantiles are approximate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one latency sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.total += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one latency sample in milliseconds.
    ///
    /// The sample is rounded to the nearest microsecond; negative or
    /// non-finite inputs clamp to 0.
    pub fn record_ms(&mut self, ms: f64) {
        let us = if ms.is_finite() && ms > 0.0 {
            (ms * 1000.0).round() as u64
        } else {
            0
        };
        self.record_us(us);
    }

    /// Folds another histogram into this one.
    ///
    /// Pure counter addition: `a.merge(&b)` equals `b.merge(&a)` and any
    /// parenthesisation of a multi-way merge yields identical state.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Returns the number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Returns the `q`-quantile (0 < q ≤ 1) in microseconds, or 0 when
    /// empty.
    ///
    /// Reports the upper bound of the bucket containing the target rank,
    /// so results are deterministic integers independent of merge order.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Never report past the observed extremes.
                return bucket_upper(idx).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    /// Median latency in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_us(0.50) as f64 / 1000.0
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_us(0.99) as f64 / 1000.0
    }

    /// 99.9th-percentile latency in milliseconds.
    pub fn p999_ms(&self) -> f64 {
        self.quantile_us(0.999) as f64 / 1000.0
    }

    /// Exact mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum_us as f64 / self.total as f64 / 1000.0
    }

    /// Exact minimum latency in milliseconds (0 when empty).
    pub fn min_ms(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.min_us as f64 / 1000.0
    }

    /// Exact maximum latency in milliseconds (0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.max_us as f64 / 1000.0
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::{bucket_index, bucket_upper, LatencyHistogram, BUCKETS, SUB};

    #[test]
    fn buckets_are_monotone_and_in_range() {
        let mut values = Vec::new();
        for msb in 0..64u32 {
            values.push(1u64 << msb);
            values.push((1u64 << msb) + (1u64 << msb) / 3);
            values.push(u64::MAX >> (63 - msb));
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} for {v}");
            assert!(idx >= last, "non-monotone index at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value {v}");
            last = idx;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 5_000, 123_456, 9_999_999, u64::MAX / 3] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-12, "error {err} at {v}");
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us * 100); // 100 µs .. 100 ms uniform
        }
        assert_eq!(h.total(), 1000);
        let p50 = h.quantile_us(0.5);
        assert!((49_000..=52_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((98_000..=102_000).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile_us(1.0), 100_000);
        assert_eq!(h.max_ms(), 100.0);
        assert_eq!(h.min_ms(), 0.1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.p999_ms(), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.min_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples: Vec<u64> = (0..5000u64).map(|i| i * i % 777_777).collect();
        let mut whole = LatencyHistogram::new();
        for &s in &samples {
            whole.record_us(s);
        }
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 3 == 0 {
                left.record_us(s);
            } else {
                right.record_us(s);
            }
        }
        // Merge in both orders; both must equal the single-stream result.
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, whole);
        assert_eq!(rl, whole);
    }

    #[test]
    fn record_ms_clamps_bad_samples() {
        let mut h = LatencyHistogram::new();
        h.record_ms(-5.0);
        h.record_ms(f64::NAN);
        h.record_ms(1.5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.quantile_us(1.0), 1500);
    }
}
