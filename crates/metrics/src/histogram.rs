//! Fixed-width bucket histograms.

use serde::{Deserialize, Serialize};

/// A histogram with fixed-width buckets over `[lo, hi)` plus overflow and
/// underflow counters.
///
/// # Examples
///
/// ```
/// use egm_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(5.5);
/// h.record(95.0);
/// assert_eq!(h.bucket_count(0), 2);
/// assert_eq!(h.bucket_count(9), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "empty range");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let idx =
                ((value - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Records every sample in the iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// Half-open value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket out of range");
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of in-range samples falling in `[from, to)`, computed over
    /// whole buckets (bucket boundaries should align with the query for
    /// exact results). Returns 0 when nothing is in range.
    pub fn fraction_between(&self, from: f64, to: f64) -> f64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut hit = 0u64;
        for i in 0..self.buckets.len() {
            let (blo, bhi) = self.bucket_range(i);
            if blo >= from && bhi <= to {
                hit += self.buckets[i];
            }
        }
        hit as f64 / total as f64
    }

    /// Renders a compact ASCII sparkline of the bucket counts.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.buckets.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return " ".repeat(self.buckets.len());
        }
        self.buckets
            .iter()
            .map(|&c| {
                let level = (c as f64 / max as f64 * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[level]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::Histogram;

    #[test]
    fn buckets_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 3.9, 9.99] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 2);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.bucket_range(1), (2.0, 4.0));
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.1);
        h.record(1.0);
        h.record(55.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn fraction_between_uses_aligned_buckets() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.record_all([5.0, 15.0, 25.0, 35.0]);
        assert_eq!(h.fraction_between(10.0, 30.0), 0.5);
        assert_eq!(h.fraction_between(0.0, 100.0), 1.0);
        let empty = Histogram::new(0.0, 1.0, 1);
        assert_eq!(empty.fraction_between(0.0, 1.0), 0.0);
    }

    #[test]
    fn sparkline_has_one_char_per_bucket() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_all([0.5, 0.6, 1.5, 3.5]);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 4);
        let empty = Histogram::new(0.0, 4.0, 4);
        assert_eq!(empty.sparkline(), "    ");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }
}
