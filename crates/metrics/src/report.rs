//! The serializable result of one experiment run.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Aggregated results of one simulated experiment — one point in the
//  paper's figures.
///
/// All fields are public: this is a passive record produced by the
/// `egm-workload` runner and consumed by the figure harnesses.
///
/// # Examples
///
/// ```
/// use egm_metrics::{RunReport, Summary};
///
/// let report = RunReport {
///     label: "flat pi=0.5".into(),
///     nodes: 100,
///     messages: 400,
///     latency: Some(Summary::from_samples(&[250.0, 260.0])),
///     payloads_per_delivery: 4.2,
///     ..RunReport::empty("flat pi=0.5", 100, 400)
/// };
/// assert!(report.to_string().contains("flat"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Human-readable configuration label (strategy and parameters).
    pub label: String,
    /// Number of protocol nodes.
    pub nodes: usize,
    /// Number of multicast messages.
    pub messages: usize,
    /// End-to-end delivery latency summary (ms), if anything was
    /// delivered.
    pub latency: Option<Summary>,
    /// Payload transmissions divided by deliveries — the paper's
    /// *payload/msg* x-axis (Fig. 5(a)). 1.0 is optimal; the eager bound
    /// is the gossip fanout.
    pub payloads_per_delivery: f64,
    /// payload/msg over the regular (non-best) nodes only — the
    /// "ranked (low)" / "combined (low)" series.
    pub payloads_per_delivery_low: Option<f64>,
    /// payload/msg over the best nodes only.
    pub payloads_per_delivery_best: Option<f64>,
    /// Mean fraction of eligible nodes delivering each message
    /// (Fig. 5(b)), in `[0, 1]`.
    pub mean_delivery_fraction: f64,
    /// Fraction of messages delivered by every eligible node.
    pub atomic_delivery_fraction: f64,
    /// Share of payload traffic on the top-5 % links (Fig. 4, Fig. 6(c)).
    pub top5_link_share: f64,
    /// Gini coefficient of per-link payload counts.
    pub link_gini: f64,
    /// Gini coefficient of per-node payload-sent counts.
    pub node_gini: f64,
    /// Mean gossip round at delivery (the paper quotes ≈4.5).
    pub mean_delivery_round: f64,
    /// Total messages of any kind sent.
    pub total_messages: u64,
    /// Total payload-bearing messages sent.
    pub total_payloads: u64,
    /// Total bytes sent.
    pub total_bytes: u64,
    /// Number of directed links that carried traffic.
    pub used_links: usize,
    /// Virtual duration of the run in milliseconds.
    pub sim_duration_ms: f64,
}

impl RunReport {
    /// A zeroed report carrying only identity fields; used as a base for
    /// struct-update syntax.
    pub fn empty(label: impl Into<String>, nodes: usize, messages: usize) -> Self {
        RunReport {
            label: label.into(),
            nodes,
            messages,
            latency: None,
            payloads_per_delivery: 0.0,
            payloads_per_delivery_low: None,
            payloads_per_delivery_best: None,
            mean_delivery_fraction: 0.0,
            atomic_delivery_fraction: 0.0,
            top5_link_share: 0.0,
            link_gini: 0.0,
            node_gini: 0.0,
            mean_delivery_round: 0.0,
            total_messages: 0,
            total_payloads: 0,
            total_bytes: 0,
            used_links: 0,
            sim_duration_ms: 0.0,
        }
    }

    /// Mean latency in ms, or NaN when nothing was delivered.
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.as_ref().map_or(f64::NAN, |s| s.mean)
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: latency {:.0}ms, {:.2} payload/msg, {:.1}% delivered, top5% links carry {:.1}%",
            self.label,
            self.mean_latency_ms(),
            self.payloads_per_delivery,
            self.mean_delivery_fraction * 100.0,
            self.top5_link_share * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::RunReport;
    use crate::summary::Summary;

    #[test]
    fn empty_report_is_identifiable() {
        let r = RunReport::empty("test", 10, 5);
        assert_eq!(r.label, "test");
        assert_eq!(r.nodes, 10);
        assert!(r.mean_latency_ms().is_nan());
    }

    #[test]
    fn display_shows_key_metrics() {
        let mut r = RunReport::empty("ranked", 100, 400);
        r.latency = Some(Summary::from_samples(&[250.0]));
        r.payloads_per_delivery = 1.7;
        r.mean_delivery_fraction = 0.995;
        r.top5_link_share = 0.30;
        let text = r.to_string();
        assert!(text.contains("250ms"));
        assert!(text.contains("1.70 payload/msg"));
        assert!(text.contains("99.5% delivered"));
        assert!(text.contains("30.0%"));
    }
}
