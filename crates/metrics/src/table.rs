//! Plain-text tables for the figure harnesses.

/// A simple left-aligned text table.
///
/// The bench harnesses print one table per figure with the same rows and
/// series the paper reports, so `cargo bench` output doubles as the
/// reproduction record.
///
/// # Examples
///
/// ```
/// use egm_metrics::Table;
///
/// let mut t = Table::new(["strategy", "latency (ms)"]);
/// t.row(["flat pi=0.1", "457"]);
/// let text = t.render();
/// assert!(text.contains("strategy"));
/// assert!(text.contains("457"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as CSV (RFC-4180-style quoting of cells
    /// containing commas, quotes or newlines), for plotting the figure
    /// series with external tools.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&cell(c));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places, rendering NaN as "-".
pub fn num(value: f64, digits: usize) -> String {
    if value.is_nan() {
        "-".to_string()
    } else {
        format!("{value:.digits$}")
    }
}

/// Formats a fraction as a percentage with one decimal place.
pub fn pct(fraction: f64) -> String {
    num(fraction * 100.0, 1)
}

#[cfg(test)]
mod tests {
    use super::{num, pct, Table};

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long header"]);
        t.row(["wide cell value", "1"]);
        t.row(["x", "2"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        // Column 2 starts at the same offset in all data rows.
        let col2 = lines[2].find('1').expect("cell present");
        assert_eq!(lines[3].find('2').expect("cell present"), col2);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["only"]);
        t.row(["a", "b"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(1.2345, 2), "1.23");
        assert_eq!(num(f64::NAN, 2), "-");
        assert_eq!(pct(0.3751), "37.5");
    }

    #[test]
    fn csv_export_is_parseable() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "2"]);
        t.row(["with\"quote", "3"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",2");
        assert_eq!(lines[3], "\"with\"\"quote\",3");
    }
}
