//! Summary statistics with 95 % confidence intervals.

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of `f64` samples.
///
/// The confidence interval uses the normal approximation
/// (`1.96 · s / √n`), which is what the paper relies on: *"confidence
/// intervals with 95 % certainty do not intersect ... the large number of
/// samples used are sufficient to make such intervals very narrow"*
/// (§5.4).
///
/// # Examples
///
/// ```
/// use egm_metrics::Summary;
///
/// let s = Summary::from_samples(&[10.0, 12.0, 11.0, 13.0]);
/// assert!((s.mean - 11.5).abs() < 1e-9);
/// assert!(s.ci95_contains(11.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval for the mean.
    pub ci95_half: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes statistics over `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        assert!(samples.iter().all(|x| x.is_finite()), "non-finite sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std_dev = if n < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        };
        let ci95_half = if n < 2 {
            0.0
        } else {
            1.96 * std_dev / (n as f64).sqrt()
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std_dev,
            ci95_half,
            min,
            max,
        }
    }

    /// Whether `value` lies within the 95 % confidence interval of the
    /// mean.
    pub fn ci95_contains(&self, value: f64) -> bool {
        (value - self.mean).abs() <= self.ci95_half
    }

    /// Whether the confidence intervals of `self` and `other` are
    /// disjoint — the paper's criterion for calling a difference
    /// significant (§5.4).
    pub fn significantly_differs_from(&self, other: &Summary) -> bool {
        (self.mean - other.mean).abs() > self.ci95_half + other.ci95_half
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (n={}, sd={:.2}, range {:.2}–{:.2})",
            self.mean, self.ci95_half, self.n, self.std_dev, self.min, self.max
        )
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of the samples using linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `samples` is empty or `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "cannot take quantile of zero samples");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::{quantile, Summary};

    #[test]
    fn basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.n, 8);
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half, 0.0);
        assert!(s.ci95_contains(3.5));
    }

    #[test]
    fn significance_requires_disjoint_intervals() {
        let a = Summary::from_samples(&[10.0, 10.1, 9.9, 10.05, 9.95]);
        let b = Summary::from_samples(&[12.0, 12.1, 11.9, 12.05, 11.95]);
        assert!(a.significantly_differs_from(&b));
        let c = Summary::from_samples(&[10.0, 12.0, 8.0, 14.0, 6.0]);
        assert!(!a.significantly_differs_from(&c), "wide CI should overlap");
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_summary_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn quantiles_interpolate() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&samples, 0.0), 1.0);
        assert_eq!(quantile(&samples, 1.0), 4.0);
        assert_eq!(quantile(&samples, 0.5), 2.5);
        assert!((quantile(&samples, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotonic() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0];
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile(&samples, i as f64 / 10.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn display_mentions_mean_and_ci() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("2.00 ±"));
        assert!(text.contains("n=3"));
    }
}
