//! Measurement substrate for the reproduction.
//!
//! The paper's methodology (§5.3–§5.4) logs every multicast and delivery,
//! records payload transmissions per link, and reports means whose 95 %
//! confidence intervals do not intersect before claiming a difference.
//! This crate provides those tools:
//!
//! * [`Summary`] — mean / standard deviation / CI95 / percentiles.
//! * [`Histogram`] — fixed-width bucket histograms for latency
//!   distributions.
//! * [`LatencyHistogram`] — log-bucketed O(1)-memory histogram with
//!   deterministic quantiles and order-independent merging, for
//!   sustained-load tail latency (p50/p99/p999).
//! * [`DeliveryLog`] — multicast/delivery records yielding end-to-end
//!   latency and reliability (mean deliveries %, Fig. 5(b)).
//! * [`link`] — emergent-structure measures over per-link payload counts:
//!   the share of traffic carried by the top-k % connections (Fig. 4,
//!   Fig. 6(c)).
//! * [`RunReport`] — the serializable result of one experiment run.
//! * [`Table`] — plain-text tables for the bench harnesses.
//!
//! # Examples
//!
//! ```
//! use egm_metrics::Summary;
//!
//! let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert!(s.ci95_half > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivery;
pub mod histogram;
pub mod latency;
pub mod link;
pub mod report;
pub mod summary;
pub mod table;

pub use delivery::DeliveryLog;
pub use histogram::Histogram;
pub use latency::LatencyHistogram;
pub use report::RunReport;
pub use summary::Summary;
pub use table::Table;
