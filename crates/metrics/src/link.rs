//! Emergent-structure measures over per-link payload counts.
//!
//! Fig. 4 of the paper visualizes the *top 5 % connections with highest
//! throughput* and quantifies structure as the share of all payload
//! transmissions they carry: ≈7 % for unstructured eager push, 37 % for
//! Radius, 30 % for Ranked. Fig. 6(c) uses the same measure to show
//! structure dissolving under noise (converging to 5 %, i.e. a uniform
//! spread). These functions compute that share and related skew measures.

/// Share of total traffic carried by the heaviest `fraction` of links.
///
/// `counts` holds one entry per link that carried traffic (zero entries
/// are permitted and count as links). At least one link is always
/// selected, matching "top 5 % connections" over a finite link set.
/// Returns 0 when total traffic is zero.
///
/// # Panics
///
/// Panics if `counts` is empty or `fraction` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use egm_metrics::link::top_fraction_share;
///
/// // One hot link out of ten carries half of all traffic.
/// let counts = [50, 6, 6, 6, 6, 6, 5, 5, 5, 5];
/// assert_eq!(top_fraction_share(&counts, 0.1), 0.5);
/// ```
pub fn top_fraction_share(counts: &[u64], fraction: f64) -> f64 {
    assert!(!counts.is_empty(), "no links to rank");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let k = ((counts.len() as f64 * fraction).round() as usize).clamp(1, counts.len());
    if k == counts.len() {
        // Whole-set share needs no selection (and no copy).
        let total: u64 = counts.iter().sum();
        return if total == 0 { 0.0 } else { 1.0 };
    }
    let mut owned = counts.to_vec();
    top_fraction_share_mut(&mut owned, fraction)
}

/// [`top_fraction_share`] over a caller-owned buffer: O(n) via
/// `select_nth_unstable` instead of a full sort, and no clone. The slice
/// is reordered (partitioned around the k-th heaviest element). Hot
/// callers that already own a scratch `counts` vector — the per-run report
/// assembly does — should use this.
///
/// # Panics
///
/// Panics under the same conditions as [`top_fraction_share`].
pub fn top_fraction_share_mut(counts: &mut [u64], fraction: f64) -> f64 {
    assert!(!counts.is_empty(), "no links to rank");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((counts.len() as f64 * fraction).round() as usize).clamp(1, counts.len());
    if k < counts.len() {
        counts.select_nth_unstable_by(k - 1, |a, b| b.cmp(a));
    }
    let top: u64 = counts[..k].iter().sum();
    top as f64 / total as f64
}

/// The number of links selected by `top_fraction_share` for a given link
/// count, exposed so reports can show "top-k of n links".
///
/// # Panics
///
/// Panics under the same conditions as [`top_fraction_share`].
pub fn top_fraction_count(link_count: usize, fraction: f64) -> usize {
    assert!(link_count > 0, "no links to rank");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1]"
    );
    ((link_count as f64 * fraction).round() as usize).clamp(1, link_count)
}

/// Gini coefficient of the per-link (or per-node) traffic distribution:
/// 0 = perfectly even (pure gossip balance), → 1 = concentrated on few
/// links (strong structure).
///
/// Returns 0 when total traffic is zero.
///
/// # Panics
///
/// Panics if `counts` is empty.
pub fn gini(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "no samples");
    let n = counts.len() as f64;
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    let mut cum = 0.0;
    let mut weighted = 0.0;
    for (i, &c) in sorted.iter().enumerate() {
        cum += c as f64;
        weighted += (i as f64 + 1.0) * c as f64;
    }
    (2.0 * weighted) / (n * cum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::{gini, top_fraction_count, top_fraction_share};

    #[test]
    fn uniform_traffic_share_equals_fraction() {
        let counts = vec![10u64; 100];
        let share = top_fraction_share(&counts, 0.05);
        assert!((share - 0.05).abs() < 1e-12);
    }

    #[test]
    fn concentrated_traffic_has_high_share() {
        let mut counts = vec![0u64; 99];
        counts.push(1000);
        assert_eq!(top_fraction_share(&counts, 0.05), 1.0);
    }

    #[test]
    fn at_least_one_link_is_selected() {
        let counts = [7u64, 3];
        // 5% of 2 links rounds to 0, clamps to 1.
        assert_eq!(top_fraction_share(&counts, 0.05), 0.7);
        assert_eq!(top_fraction_count(2, 0.05), 1);
        assert_eq!(top_fraction_count(100, 0.05), 5);
    }

    #[test]
    fn zero_traffic_share_is_zero() {
        assert_eq!(top_fraction_share(&[0, 0, 0], 0.5), 0.0);
    }

    #[test]
    fn full_fraction_is_everything() {
        assert_eq!(top_fraction_share(&[5, 5, 5], 1.0), 1.0);
    }

    #[test]
    fn mut_variant_matches_allocating_variant() {
        let counts = [50u64, 6, 6, 6, 6, 6, 5, 5, 5, 5];
        for fraction in [0.05, 0.1, 0.3, 0.5, 1.0] {
            let reference = super::top_fraction_share(&counts, fraction);
            let mut owned = counts.to_vec();
            let got = super::top_fraction_share_mut(&mut owned, fraction);
            assert_eq!(got, reference, "fraction {fraction}");
            // The buffer is permuted, never altered.
            owned.sort_unstable();
            let mut expect = counts.to_vec();
            expect.sort_unstable();
            assert_eq!(owned, expect);
        }
    }

    #[test]
    fn mut_variant_zero_traffic_is_zero() {
        assert_eq!(super::top_fraction_share_mut(&mut [0, 0, 0], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let _ = top_fraction_share(&[1], 0.0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[5, 5, 5, 5]), 0.0);
        let concentrated = gini(&[0, 0, 0, 100]);
        assert!(concentrated > 0.74, "gini {concentrated}");
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_orders_by_concentration() {
        let even = gini(&[10, 10, 10, 10, 10]);
        let mild = gini(&[20, 10, 10, 5, 5]);
        let strong = gini(&[40, 5, 2, 2, 1]);
        assert!(even < mild && mild < strong);
    }
}
