//! Multicast/delivery logging: latency and reliability.

use crate::summary::Summary;
use serde::{Deserialize, Serialize};

/// Log of multicasts and deliveries for one experiment run.
///
/// Mirrors §5.3 of the paper: *"All messages multicast and delivered are
/// logged for later processing. Namely, end-to-end latency can be
/// measured..."*. Node identity is a plain index so the log is independent
/// of the simulator.
///
/// # Layout
///
/// Deliveries are stored **sparsely per message**: each message holds a
/// packed `(node, time, round)` record per delivery in arrival order,
/// plus a `SeenSet` for first-delivery deduplication. The seen-set is
/// a sparse→dense→sealed hybrid: a sorted id list while deliveries are
/// few, an `n`-bit bitmap once that would cost more, and — when the
/// message saturates (every node delivered) — no storage at all, the
/// entry is *sealed* and membership is implicit. Memory is
/// `O(total deliveries)` rather than the `O(messages × n/8)` a
/// per-message bitmap costs (125 KB per in-flight message at 1M nodes)
/// or the dense `O(messages × n)` of a per-(node, message) matrix.
///
/// # Examples
///
/// ```
/// use egm_metrics::DeliveryLog;
///
/// let mut log = DeliveryLog::new(3);
/// let m = log.record_multicast(0, 100.0);
/// log.record_delivery(m, 1, 150.0, 1);
/// log.record_delivery(m, 2, 160.0, 2);
/// assert_eq!(log.delivery_count(m), 2);
/// assert_eq!(log.latencies(), vec![50.0, 60.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryLog {
    node_count: usize,
    /// Per message: (source node, multicast time ms).
    sends: Vec<(usize, f64)>,
    /// Per message: sparse first-delivery records.
    deliveries: Vec<MessageDeliveries>,
}

/// Sparse first-delivery records of one message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct MessageDeliveries {
    /// `(node, delivery time ms, gossip round)` in arrival order.
    entries: Vec<(u32, f64, u32)>,
    /// Which nodes already delivered (first-delivery dedup).
    seen: SeenSet,
}

/// Dedup set behind one message's delivery records.
///
/// Starts sparse (a sorted id list), promotes itself to a dense bitmap
/// once the list would cost more than the bitmap, and drops all storage
/// when the message saturates — at which point membership is implicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SeenSet {
    /// Sorted node ids; membership and insertion by binary search.
    Sparse(Vec<u32>),
    /// One bit per node.
    Dense(Vec<u64>),
    /// Every node delivered: the entry is sealed, `contains` is `true`.
    Saturated,
}

/// Sparse capacity: promote to the bitmap once the sorted list costs as
/// much (4 bytes/entry vs `n/8` bytes), capped so the O(len) sorted
/// insert stays bounded at very large `n`.
fn sparse_cap(node_count: usize) -> usize {
    (node_count / 32).clamp(8, 4096)
}

impl SeenSet {
    #[inline]
    fn contains(&self, node: usize) -> bool {
        match self {
            SeenSet::Sparse(v) => v.binary_search(&(node as u32)).is_ok(),
            SeenSet::Dense(bits) => bits[node / 64] & (1u64 << (node % 64)) != 0,
            SeenSet::Saturated => true,
        }
    }

    /// Inserts `node`; `true` when newly seen.
    fn insert(&mut self, node: usize, node_count: usize) -> bool {
        match self {
            SeenSet::Saturated => false,
            SeenSet::Dense(bits) => {
                let word = &mut bits[node / 64];
                let bit = 1u64 << (node % 64);
                if *word & bit != 0 {
                    return false;
                }
                *word |= bit;
                true
            }
            SeenSet::Sparse(v) => match v.binary_search(&(node as u32)) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() < sparse_cap(node_count) {
                        v.insert(pos, node as u32);
                    } else {
                        let mut bits = vec![0u64; node_count.div_ceil(64)];
                        for &n in v.iter() {
                            bits[n as usize / 64] |= 1u64 << (n % 64);
                        }
                        bits[node / 64] |= 1u64 << (node % 64);
                        *self = SeenSet::Dense(bits);
                    }
                    true
                }
            },
        }
    }
}

impl MessageDeliveries {
    fn new() -> Self {
        MessageDeliveries {
            entries: Vec::new(),
            seen: SeenSet::Sparse(Vec::new()),
        }
    }

    #[inline]
    fn contains(&self, node: usize) -> bool {
        self.seen.contains(node)
    }

    /// Records the first delivery at `node`; later duplicates are
    /// ignored. When the message saturates, the dedup storage is dropped
    /// and the entry sealed.
    fn insert(&mut self, node: usize, node_count: usize, time_ms: f64, round: u32) {
        if !self.seen.insert(node, node_count) {
            return;
        }
        self.entries.push((node as u32, time_ms, round));
        if self.entries.len() == node_count {
            self.seen = SeenSet::Saturated;
        }
    }
}

impl DeliveryLog {
    /// Creates an empty log for `node_count` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0`.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "need at least one node");
        DeliveryLog {
            node_count,
            sends: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Number of nodes the log covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of multicasts recorded.
    pub fn message_count(&self) -> usize {
        self.sends.len()
    }

    /// Records a multicast by `source` at `time_ms`; returns the message
    /// index used for delivery records.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn record_multicast(&mut self, source: usize, time_ms: f64) -> usize {
        assert!(source < self.node_count, "source out of range");
        self.sends.push((source, time_ms));
        self.deliveries.push(MessageDeliveries::new());
        self.sends.len() - 1
    }

    /// Records the first delivery of message `msg` at `node`.
    ///
    /// Later duplicate records for the same (msg, node) are ignored — the
    /// protocol's `Deliver` upcall fires once per node, but the harness is
    /// defensive about it.
    ///
    /// # Panics
    ///
    /// Panics if `msg` or `node` is out of range.
    pub fn record_delivery(&mut self, msg: usize, node: usize, time_ms: f64, round: u32) {
        assert!(msg < self.sends.len(), "unknown message {msg}");
        assert!(node < self.node_count, "node out of range");
        self.deliveries[msg].insert(node, self.node_count, time_ms, round);
    }

    /// Number of nodes that delivered message `msg`.
    ///
    /// # Panics
    ///
    /// Panics if `msg` is out of range.
    pub fn delivery_count(&self, msg: usize) -> usize {
        self.deliveries[msg].entries.len()
    }

    /// End-to-end latencies (ms) of all deliveries at nodes *other than
    /// the source* (the source delivers to itself at multicast time), in
    /// recording order.
    pub fn latencies(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (msg, &(source, t0)) in self.sends.iter().enumerate() {
            for &(node, t, _) in &self.deliveries[msg].entries {
                if node as usize == source {
                    continue;
                }
                out.push(t - t0);
            }
        }
        out
    }

    /// Summary of delivery latency, or `None` if nothing was delivered.
    pub fn latency_summary(&self) -> Option<Summary> {
        let l = self.latencies();
        if l.is_empty() {
            None
        } else {
            Some(Summary::from_samples(&l))
        }
    }

    /// Gossip rounds (hops) after which deliveries happened, excluding the
    /// source's own delivery at round 0.
    pub fn delivery_rounds(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (msg, &(source, _)) in self.sends.iter().enumerate() {
            for &(node, _, r) in &self.deliveries[msg].entries {
                if node as usize == source {
                    continue;
                }
                out.push(r);
            }
        }
        out
    }

    /// Mean fraction of `eligible` nodes that delivered each message — the
    /// paper's *mean deliveries %* (Fig. 5(b)). The source counts as having
    /// delivered its own message.
    ///
    /// `eligible[i] == false` excludes node `i` (e.g. nodes silenced by
    /// fault injection) from the denominator and numerator.
    ///
    /// # Panics
    ///
    /// Panics if `eligible.len()` differs from the node count, if no nodes
    /// are eligible, or if no messages were recorded.
    pub fn mean_delivery_fraction(&self, eligible: &[bool]) -> f64 {
        assert_eq!(eligible.len(), self.node_count, "eligibility mask size");
        let eligible_count = eligible.iter().filter(|&&e| e).count();
        assert!(eligible_count > 0, "no eligible nodes");
        assert!(!self.sends.is_empty(), "no messages recorded");
        let mut total = 0.0;
        for (msg, &(source, _)) in self.sends.iter().enumerate() {
            let d = &self.deliveries[msg];
            let mut delivered = d
                .entries
                .iter()
                .filter(|&&(node, _, _)| eligible[node as usize])
                .count();
            if eligible[source] && !d.contains(source) {
                delivered += 1; // implicit self-delivery
            }
            total += delivered as f64 / eligible_count as f64;
        }
        total / self.sends.len() as f64
    }

    /// Fraction of messages delivered by *every* eligible node (atomic
    /// delivery rate).
    ///
    /// # Panics
    ///
    /// Same conditions as [`DeliveryLog::mean_delivery_fraction`].
    pub fn atomic_delivery_fraction(&self, eligible: &[bool]) -> f64 {
        assert_eq!(eligible.len(), self.node_count, "eligibility mask size");
        let eligible_count = eligible.iter().filter(|&&e| e).count();
        assert!(!self.sends.is_empty(), "no messages recorded");
        let mut atomic = 0usize;
        for (msg, &(source, _)) in self.sends.iter().enumerate() {
            let d = &self.deliveries[msg];
            let mut delivered = d
                .entries
                .iter()
                .filter(|&&(node, _, _)| eligible[node as usize])
                .count();
            if eligible[source] && !d.contains(source) {
                delivered += 1;
            }
            if delivered == eligible_count {
                atomic += 1;
            }
        }
        atomic as f64 / self.sends.len() as f64
    }

    /// Total number of deliveries recorded (excluding implicit source
    /// self-deliveries).
    pub fn total_deliveries(&self) -> u64 {
        self.deliveries.iter().map(|d| d.entries.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::DeliveryLog;

    fn two_message_log() -> DeliveryLog {
        let mut log = DeliveryLog::new(4);
        let m0 = log.record_multicast(0, 0.0);
        log.record_delivery(m0, 1, 40.0, 1);
        log.record_delivery(m0, 2, 55.0, 2);
        log.record_delivery(m0, 3, 70.0, 3);
        let m1 = log.record_multicast(1, 100.0);
        log.record_delivery(m1, 0, 145.0, 1);
        log.record_delivery(m1, 2, 150.0, 2);
        log
    }

    #[test]
    fn latencies_exclude_source() {
        let log = two_message_log();
        assert_eq!(log.latencies(), vec![40.0, 55.0, 70.0, 45.0, 50.0]);
        let s = log.latency_summary().expect("non-empty");
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 52.0);
    }

    #[test]
    fn duplicate_deliveries_keep_first() {
        let mut log = DeliveryLog::new(2);
        let m = log.record_multicast(0, 0.0);
        log.record_delivery(m, 1, 30.0, 1);
        log.record_delivery(m, 1, 99.0, 5);
        assert_eq!(log.latencies(), vec![30.0]);
        assert_eq!(log.delivery_count(m), 1);
    }

    #[test]
    fn delivery_fraction_counts_source() {
        let log = two_message_log();
        let all = vec![true; 4];
        // m0: 4/4 (incl. source), m1: 3/4 (node 3 missed)
        assert!((log.mean_delivery_fraction(&all) - 0.875).abs() < 1e-12);
        assert_eq!(log.atomic_delivery_fraction(&all), 0.5);
    }

    #[test]
    fn explicit_source_delivery_is_not_double_counted() {
        let mut log = DeliveryLog::new(3);
        let m = log.record_multicast(0, 0.0);
        log.record_delivery(m, 0, 0.0, 0); // source logs its own delivery
        log.record_delivery(m, 1, 10.0, 1);
        log.record_delivery(m, 2, 12.0, 1);
        let all = vec![true; 3];
        assert_eq!(log.mean_delivery_fraction(&all), 1.0);
        assert_eq!(log.atomic_delivery_fraction(&all), 1.0);
        assert_eq!(log.latencies(), vec![10.0, 12.0], "source excluded");
    }

    #[test]
    fn eligibility_mask_excludes_dead_nodes() {
        let log = two_message_log();
        // Consider node 3 dead: m0 delivered by {0,1,2}, m1 by {1,0,2}.
        let eligible = vec![true, true, true, false];
        assert_eq!(log.mean_delivery_fraction(&eligible), 1.0);
        assert_eq!(log.atomic_delivery_fraction(&eligible), 1.0);
    }

    #[test]
    fn delivery_rounds_track_gossip_depth() {
        let log = two_message_log();
        assert_eq!(log.delivery_rounds(), vec![1, 2, 3, 1, 2]);
        assert_eq!(log.total_deliveries(), 5);
        assert_eq!(log.message_count(), 2);
        assert_eq!(log.node_count(), 4);
    }

    #[test]
    fn empty_log_has_no_latency_summary() {
        let mut log = DeliveryLog::new(2);
        assert!(log.latency_summary().is_none());
        let m = log.record_multicast(0, 0.0);
        assert_eq!(log.delivery_count(m), 0);
    }

    #[test]
    fn bitmap_covers_many_nodes() {
        // Cross the 64-bit word boundary.
        let mut log = DeliveryLog::new(200);
        let m = log.record_multicast(0, 0.0);
        for node in [1usize, 63, 64, 65, 127, 128, 199] {
            log.record_delivery(m, node, node as f64, 1);
            log.record_delivery(m, node, 999.0, 9); // duplicate ignored
        }
        assert_eq!(log.delivery_count(m), 7);
        let lat = log.latencies();
        assert_eq!(lat.len(), 7);
        assert_eq!(lat[0], 1.0);
        assert_eq!(*lat.last().expect("non-empty"), 199.0);
    }

    #[test]
    fn sparse_set_promotes_to_dense_past_the_cap() {
        // 1024 nodes → sparse cap 32: the 33rd distinct delivery promotes
        // the set to the bitmap; dedup keeps working across the switch.
        let mut log = DeliveryLog::new(1024);
        let m = log.record_multicast(0, 0.0);
        for node in 1..=40usize {
            let id = node * 19 % 1024; // unordered inserts
            log.record_delivery(m, id, node as f64, 1);
            log.record_delivery(m, id, 999.0, 9); // duplicate ignored
        }
        assert_eq!(log.delivery_count(m), 40);
        assert!(matches!(log.deliveries[m].seen, super::SeenSet::Dense(_)));
        // Duplicates after the promotion are still ignored.
        log.record_delivery(m, 19, 999.0, 9);
        assert_eq!(log.delivery_count(m), 40);
    }

    #[test]
    fn saturation_seals_the_entry_and_frees_the_set() {
        let mut log = DeliveryLog::new(5);
        let m = log.record_multicast(0, 0.0);
        for node in 0..5usize {
            log.record_delivery(m, node, node as f64, 1);
        }
        assert!(matches!(log.deliveries[m].seen, super::SeenSet::Saturated));
        // Sealed entries treat everything as a duplicate...
        log.record_delivery(m, 3, 999.0, 9);
        assert_eq!(log.delivery_count(m), 5);
        // ...and the fraction accounting still sees the source delivery.
        let all = vec![true; 5];
        assert_eq!(log.mean_delivery_fraction(&all), 1.0);
        assert_eq!(log.atomic_delivery_fraction(&all), 1.0);
    }

    #[test]
    fn hybrid_states_agree_on_fractions() {
        // One message promoted to dense, one still sparse, checked
        // against hand-computed fractions.
        let mut log = DeliveryLog::new(100);
        let m = log.record_multicast(7, 0.0);
        for node in 0..50usize {
            log.record_delivery(m, node, 1.0, 1);
        }
        let all = vec![true; 100];
        // 50 explicit + source (node 7 already among 0..50): 50/100.
        assert!((log.mean_delivery_fraction(&all) - 0.5).abs() < 1e-12);
        let m2 = log.record_multicast(99, 10.0);
        log.record_delivery(m2, 0, 11.0, 1);
        // m2: 1 explicit + implicit source = 2/100.
        assert!((log.mean_delivery_fraction(&all) - (0.5 + 0.02) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn delivery_for_unknown_message_panics() {
        let mut log = DeliveryLog::new(2);
        log.record_delivery(0, 1, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "no eligible nodes")]
    fn all_dead_mask_panics() {
        let mut log = DeliveryLog::new(2);
        log.record_multicast(0, 0.0);
        let _ = log.mean_delivery_fraction(&[false, false]);
    }
}
