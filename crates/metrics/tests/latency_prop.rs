//! Property suite for the mergeable latency histogram: shard-local
//! histograms folded in any grouping and order must equal the histogram
//! a single sequential stream would build — the invariant that lets the
//! sharded engine keep tail-latency accounting byte-identical to the
//! sequential one.

use egm_metrics::LatencyHistogram;
use proptest::prelude::*;

fn build(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record_us(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_associative_and_equals_the_single_stream(
        a in prop::collection::vec(0u64..100_000_000, 0..200),
        b in prop::collection::vec(0u64..100_000_000, 0..200),
        c in prop::collection::vec(0u64..100_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c).
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Commuted fold order agrees too.
        let mut flipped = hc.clone();
        flipped.merge(&ha);
        flipped.merge(&hb);
        prop_assert_eq!(&left, &flipped);

        // Any merged grouping equals one sequential stream.
        let whole: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &build(&whole));

        prop_assert_eq!(left.total(), (a.len() + b.len() + c.len()) as u64);
        if !left.is_empty() {
            prop_assert!(left.p50_ms() <= left.p99_ms());
            prop_assert!(left.p99_ms() <= left.p999_ms());
            prop_assert!(left.min_ms() <= left.max_ms());
        }
    }

    #[test]
    fn quantiles_stay_within_the_relative_error_bound(
        values in prop::collection::vec(1u64..100_000_000, 1..300),
        q in 0.0f64..1.0,
    ) {
        let h = build(&values);
        let mut values = values;
        values.sort_unstable();
        let target = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[target - 1];
        let approx = h.quantile_us(q);
        // Log bucketing with 32 sub-buckets: ≤ 1/32 relative error, and
        // clamped into the observed range.
        prop_assert!(approx >= exact, "quantile must not under-report: {approx} < {exact}");
        let bound = exact + exact / 32 + 1;
        prop_assert!(approx <= bound, "quantile {approx} above error bound {bound} (exact {exact})");
        prop_assert!(approx >= values[0] && approx <= *values.last().unwrap());
    }
}
