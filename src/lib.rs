//! Facade crate for the *Emergent Structure in Unstructured Epidemic
//! Multicast* (DSN 2007) reproduction: re-exports every workspace crate
//! under one roof and hosts the runnable examples and cross-crate tests.
//!
//! Start from [`workload::Scenario`] for whole experiments, or from
//! [`core`] ([`egm_core`]) to embed the protocol directly.
//!
//! # Examples
//!
//! ```
//! use emergent_multicast::core::StrategySpec;
//! use emergent_multicast::workload::Scenario;
//!
//! let report = Scenario::smoke_test()
//!     .with_strategy(StrategySpec::Ttl { u: 2 })
//!     .run();
//! assert!(report.mean_delivery_fraction > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use egm_core as core;
pub use egm_membership as membership;
pub use egm_metrics as metrics;
pub use egm_rng as rng;
pub use egm_simnet as simnet;
pub use egm_topology as topology;
pub use egm_workload as workload;

/// Compiles and runs the README's code blocks (the Quickstart snippet)
/// as doctests, so the front-door documentation can never rot: `cargo
/// test --doc` executes exactly what the README shows.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;
