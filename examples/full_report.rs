//! Regenerate the paper's entire evaluation in one go: §5.1/§5.4
//! statistics, Fig. 4, Fig. 5(a–c), Fig. 6 and the suppression ablation.
//!
//! ```sh
//! EGM_SCALE=paper cargo run --release --example full_report
//! ```

use egm_workload::experiments::{
    ablation, fig4, fig5a, fig5b, fig5c, fig6, netstats, rank_quality, Scale,
};

fn banner(title: &str) {
    println!("\n==================== {title} ====================");
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "regenerating the full evaluation at {} nodes × {} messages (seed {})",
        scale.nodes, scale.messages, scale.seed
    );

    banner("§5.1 / §5.4 — network model and run statistics");
    println!("{}", netstats::run(&scale).render());

    banner("Fig. 4 — emergent structure (top-5% connections)");
    println!("{}", fig4::render(&fig4::run(&scale)));

    banner("Fig. 5(a) — latency vs payload/msg");
    println!("{}", fig5a::render(&fig5a::run(&scale)));

    banner("Fig. 5(b) — mean deliveries vs dead nodes");
    println!("{}", fig5b::render(&fig5b::run(&scale)));

    banner("Fig. 5(c) — hybrid strategy");
    println!("{}", fig5c::render(&fig5c::run(&scale)));

    banner("Fig. 6 — degradation of structure under noise");
    println!("{}", fig6::render(&fig6::run(&scale)));

    banner("Ablation — NeEM redundancy suppression");
    println!("{}", ablation::render(&ablation::run(&scale)));

    banner("Extension — decentralized ranking quality");
    println!("{}", rank_quality::render(&rank_quality::run(&scale)));
}
