//! Noise robustness (paper Fig. 6): blur every `Eager?` decision with
//! calibrated noise and watch structure dissolve gracefully — traffic
//! volume constant, latency degrading toward Flat, top-5 % link share
//! converging to 5 %.
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use egm_workload::experiments::{fig6, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "reproducing Fig. 6 at {} nodes × {} messages...\n",
        scale.nodes, scale.messages
    );

    let points = fig6::run(&scale);
    println!("{}", fig6::render(&points));

    for series in ["radius", "ranked"] {
        let s: Vec<_> = points.iter().filter(|p| p.series == series).collect();
        let clean = s.first().expect("noise sweep starts at 0");
        let noisy = s.last().expect("noise sweep ends at 100%");
        println!(
            "{series}: structure (top-5% share) {:.1}% -> {:.1}% as noise 0 -> 100%, \
             payload volume {:.2} -> {:.2} (preserved)",
            clean.top5_share * 100.0,
            noisy.top5_share * 100.0,
            clean.payloads_per_msg,
            noisy.payloads_per_msg,
        );
    }
}
