//! Deployable monitoring: run the Radius strategy on the *runtime*
//! ping-based performance monitor instead of the model-file oracle, and
//! compare. The paper evaluates with oracles to isolate strategy quality
//! (§4.3) and argues real deployments can reuse TCP RTT estimates; this
//! example shows the protocol working end-to-end with measured RTTs.
//!
//! ```sh
//! cargo run --release --example live_monitor
//! ```

use egm_core::{MonitorSpec, StrategySpec};
use egm_simnet::SimDuration;
use egm_workload::experiments::{base_scenario, shared_model, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = shared_model(&scale);
    println!(
        "Radius strategy, oracle vs runtime monitor, {} nodes × {} messages\n",
        scale.nodes, scale.messages
    );

    let strategy = StrategySpec::Radius {
        rho: 25.0,
        t0_ms: 25.0,
    };

    let oracle = base_scenario(&scale)
        .with_strategy(strategy.clone())
        .with_monitor(MonitorSpec::OracleLatency)
        .run_with_model(model.clone());

    // Runtime monitor: nodes ping 3 view peers every 250ms; the EWMA of
    // measured RTT/2 replaces the oracle. Until a peer is measured its
    // metric is infinite, i.e. the node fails closed to lazy push.
    let mut runtime_scenario = base_scenario(&scale)
        .with_strategy(strategy)
        .with_monitor(MonitorSpec::Runtime);
    runtime_scenario.protocol.ping_interval = Some(SimDuration::from_ms(250.0));
    runtime_scenario.warmup_ms = 4000.0; // give the monitor time to learn
    let runtime = runtime_scenario.run_with_model(model);

    println!("oracle : {oracle}");
    println!("runtime: {runtime}");
    println!(
        "\nlatency penalty of measured (vs oracle) knowledge: {:+.0}ms; \
         structure survives: top-5% share {:.1}% vs {:.1}%",
        runtime.mean_latency_ms() - oracle.mean_latency_ms(),
        runtime.top5_link_share * 100.0,
        oracle.top5_link_share * 100.0,
    );
}
