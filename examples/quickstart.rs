//! Quickstart: run one epidemic multicast experiment and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use egm_core::StrategySpec;
use egm_workload::Scenario;

fn main() {
    // The paper's configuration (§5.2–5.3): 100 nodes on a transit–stub
    // Internet model, 400 × 256-byte multicasts, gossip fanout 11.
    // We shrink it slightly so the quickstart finishes in seconds.
    let scenario = Scenario::paper_default().with_messages(100);

    println!(
        "running {} nodes × {} messages...\n",
        scenario.node_count(),
        scenario.messages
    );

    // Pure eager push: lowest latency, fanout-many redundant payloads.
    let eager = scenario
        .clone()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .run();
    // Pure lazy push: ~1 payload per delivery, two extra hops of latency.
    let lazy = scenario
        .clone()
        .with_strategy(StrategySpec::Flat { pi: 0.0 })
        .run();
    // The paper's contribution: let structure emerge by scheduling payload
    // through 20% hub nodes.
    let ranked = scenario
        .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
        .run();

    for report in [&eager, &lazy, &ranked] {
        println!("{report}");
    }

    println!(
        "\nranked keeps {:.0}% of eager's latency at {:.0}% of its payload traffic",
        100.0 * ranked.mean_latency_ms() / eager.mean_latency_ms(),
        100.0 * ranked.payloads_per_delivery / eager.payloads_per_delivery,
    );
}
