//! Adaptive eagerness (extension): every node tunes its own eager
//! probability from local duplicate feedback, converging on a chosen
//! redundancy budget without any coordination — the "large scale adaptive
//! protocols" direction §8 of the paper points to.
//!
//! ```sh
//! cargo run --release --example adaptive_budget
//! ```

use egm_core::StrategySpec;
use egm_metrics::{table, Table};
use egm_workload::experiments::{base_scenario, shared_model, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = shared_model(&scale);
    println!(
        "adaptive redundancy budgets, {} nodes × {} messages\n",
        scale.nodes, scale.messages
    );

    let mut t = Table::new(["strategy", "payload/msg", "latency (ms)", "delivered (%)"]);
    let mut run = |label: &str, spec: StrategySpec| {
        let report = base_scenario(&scale)
            .with_strategy(spec)
            .run_with_model(model.clone());
        t.row([
            label.to_string(),
            table::num(report.payloads_per_delivery, 2),
            table::num(report.mean_latency_ms(), 0),
            table::pct(report.mean_delivery_fraction),
        ]);
    };
    run("flat pi=1 (eager bound)", StrategySpec::Flat { pi: 1.0 });
    for target in [0.8, 0.5, 0.2] {
        run(
            &format!("adaptive target={target}"),
            StrategySpec::Adaptive {
                initial_pi: 1.0,
                target_duplicate_ratio: target,
            },
        );
    }
    run("flat pi=0 (lazy bound)", StrategySpec::Flat { pi: 0.0 });
    println!("{}", t.render());
    println!(
        "tighter duplicate budgets trade latency for bandwidth along the same\n\
         frontier as Flat — but the operating point is discovered locally by\n\
         each node instead of being configured globally."
    );
}
