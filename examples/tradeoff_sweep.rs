//! Latency/bandwidth tradeoff (paper Fig. 5(a) and 5(c)): sweep every
//! strategy's parameter and print the tradeoff curves, including the
//! hybrid "combined" strategy of §6.4.
//!
//! Each figure's points are independent simulations, so the sweep fans
//! them across cores through `egm_workload::runner::run_sweep` — results
//! are byte-identical to sequential execution (every run forks its RNG
//! tree from its own seed). `RAYON_NUM_THREADS=1` forces sequential;
//! `EGM_SCALE=paper` runs the full 100-node × 400-message grid.
//!
//! ```sh
//! cargo run --release --example tradeoff_sweep
//! ```

use egm_workload::experiments::{fig5a, fig5c, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "reproducing Fig. 5(a) and 5(c) at {} nodes × {} messages...\n",
        scale.nodes, scale.messages
    );

    let points = fig5a::run(&scale);
    println!("{}", fig5a::render(&points));

    let eager = fig5a::series(&points, "flat")
        .last()
        .expect("pi=1")
        .latency_ms;
    let lazy = fig5a::series(&points, "flat")
        .first()
        .expect("pi=0")
        .latency_ms;
    println!(
        "flat span: {lazy:.0}ms (pure lazy, ~1 payload/msg) down to {eager:.0}ms \
         (pure eager, fanout payloads) — the paper's 480ms -> 227ms tradeoff.\n"
    );

    let hybrid = fig5c::run(&scale);
    println!("{}", fig5c::render(&hybrid));
    println!(
        "combined (low) shows the paper's §6.4 result: near-eager latency for \
         regular nodes at a fraction of the payload cost, funded by the hubs."
    );
}
