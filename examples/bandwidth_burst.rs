//! Burst serialization: constrain each node's uplink and watch eager
//! gossip's fanout bursts inflate latency while lazy push barely notices.
//!
//! §5.3 of the paper observes that epidemic multicast "produces a bursty
//! load, in particular when using eager push gossip" — enough that the
//! authors cap virtual-node density to avoid falsified latencies. This
//! example reproduces the effect with the simulator's per-node egress
//! bandwidth model: every transmission queues FIFO on the sender's uplink
//! for `bytes / bandwidth`.
//!
//! ```sh
//! cargo run --release --example bandwidth_burst
//! ```

use egm_core::StrategySpec;
use egm_metrics::{table, Table};
use egm_workload::experiments::{base_scenario, shared_model, Scale};

fn main() {
    let scale = Scale::from_env();
    let model = shared_model(&scale);
    println!(
        "per-node uplink sweep, {} nodes × {} messages (fanout 11, 280B payload packets)\n",
        scale.nodes, scale.messages
    );

    let mut t = Table::new([
        "uplink (KB/s)",
        "eager latency (ms)",
        "lazy latency (ms)",
        "eager delivered (%)",
        "lazy delivered (%)",
    ]);
    for bw_kbps in [f64::INFINITY, 500.0, 100.0, 50.0] {
        let with_bw = |pi: f64| {
            let mut s = base_scenario(&scale).with_strategy(StrategySpec::Flat { pi });
            if bw_kbps.is_finite() {
                s.egress_bandwidth = Some(bw_kbps * 1000.0);
            }
            s.run_with_model(model.clone())
        };
        let eager = with_bw(1.0);
        let lazy = with_bw(0.0);
        t.row([
            if bw_kbps.is_finite() {
                format!("{bw_kbps:.0}")
            } else {
                "unlimited".into()
            },
            table::num(eager.mean_latency_ms(), 0),
            table::num(lazy.mean_latency_ms(), 0),
            table::pct(eager.mean_delivery_fraction),
            table::pct(lazy.mean_delivery_fraction),
        ]);
    }
    println!("{}", t.render());
    println!(
        "eager push pays for its fanout bursts as uplinks narrow; lazy push's\n\
         single-payload-per-destination schedule is almost unaffected — the\n\
         bandwidth side of the paper's latency/bandwidth tradeoff."
    );
}
