//! Fault tolerance (paper Fig. 5(b)): silence up to 80 % of the nodes —
//! including exactly the emergent hubs — and watch reliability hold.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use egm_workload::experiments::{fig5b, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "reproducing Fig. 5(b) at {} nodes × {} messages...\n",
        scale.nodes, scale.messages
    );

    let points = fig5b::run(&scale);
    println!("{}", fig5b::render(&points));

    // The paper's headline: killing the best-ranked nodes — precisely the
    // ones carrying most payload — has no noticeable reliability impact,
    // because the lazy advertisements retain gossip's redundancy.
    let worst_hub_kill = points
        .iter()
        .filter(|p| p.series == "ranked/ranked" && p.dead_fraction <= 0.6)
        .map(|p| p.mean_deliveries)
        .fold(f64::INFINITY, f64::min);
    println!(
        "worst live-node delivery rate with up to 60% of nodes (hubs first!) dead: {:.1}%",
        worst_hub_kill * 100.0
    );
}
