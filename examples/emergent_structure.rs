//! Emergent structure (paper Fig. 4): compare how strategies concentrate
//! payload traffic onto few links, and draw the structure as an ASCII map
//! of the pseudo-geographic plane.
//!
//! ```sh
//! cargo run --release --example emergent_structure
//! ```

use egm_workload::experiments::{fig4, Scale};

fn main() {
    let scale = Scale::from_env();
    println!(
        "reproducing Fig. 4 at {} nodes × {} messages...\n",
        scale.nodes, scale.messages
    );

    let rows = fig4::run(&scale);
    println!("{}", fig4::render(&rows));
    println!(
        "paper: eager spreads traffic evenly (top-5% links carry ~7%);\n\
         Radius forms a geographic mesh (~37%); Ranked forms super-nodes (~30%).\n"
    );

    for row in &rows {
        println!(
            "--- {} — node load map ('#' = hottest nodes) ---",
            row.label
        );
        println!("{}", fig4::structure_map(&row.outcome, 64, 18));
    }
}
