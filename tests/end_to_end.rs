//! Full-stack integration tests: topology → simulator → membership →
//! protocol → metrics, across strategies.

use egm_core::StrategySpec;
use egm_workload::Scenario;

/// Eager push delivers atomically to everyone and costs ≈fanout payloads
/// per delivery (§6.2: "each payload is approximately transmitted f times
/// for each delivery").
#[test]
fn eager_push_is_atomic_and_fanout_expensive() {
    let report = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .run();
    assert!(report.mean_delivery_fraction > 0.999, "{report}");
    assert!(report.atomic_delivery_fraction > 0.95, "{report}");
    let fanout = 6.0; // smoke_test fanout
    assert!(
        (report.payloads_per_delivery - fanout).abs() < 1.5,
        "expected ≈{fanout} payloads/delivery, got {}",
        report.payloads_per_delivery
    );
}

/// Lazy push approaches the optimal single payload per delivery at the
/// cost of extra round trips (§6.2: latency 480 ms vs 227 ms on the
/// paper's testbed).
#[test]
fn lazy_push_is_near_optimal_but_slow() {
    let lazy = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 0.0 })
        .run();
    let eager = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .run();
    assert!(lazy.payloads_per_delivery < 1.25, "{lazy}");
    assert!(
        lazy.mean_delivery_fraction > 0.99,
        "lazy must still be reliable: {lazy}"
    );
    // The extra IHAVE/IWANT round trip roughly triples per-hop latency.
    assert!(
        lazy.mean_latency_ms() > 1.8 * eager.mean_latency_ms(),
        "lazy {} vs eager {}",
        lazy.mean_latency_ms(),
        eager.mean_latency_ms()
    );
}

/// Intermediate Flat probabilities interpolate the tradeoff monotonically
/// in traffic.
#[test]
fn flat_interpolates_the_tradeoff() {
    let mut last_payloads = 0.0;
    for pi in [0.0, 0.3, 0.7, 1.0] {
        let report = Scenario::smoke_test()
            .with_strategy(StrategySpec::Flat { pi })
            .run();
        assert!(
            report.payloads_per_delivery >= last_payloads - 0.05,
            "traffic must grow with pi: {} after {last_payloads}",
            report.payloads_per_delivery
        );
        last_payloads = report.payloads_per_delivery;
    }
}

/// TTL achieves a better tradeoff than Flat at matched traffic — the
/// paper's headline for environment-free strategies (250 ms at 1.7
/// payloads vs Flat's interpolation).
#[test]
fn ttl_dominates_flat_at_matched_traffic() {
    let ttl = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ttl { u: 2 })
        .run();
    // Find a flat configuration with at least as much traffic.
    let flat = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat {
            pi: (ttl.payloads_per_delivery / 6.0).clamp(0.0, 1.0),
        })
        .run();
    assert!(
        flat.payloads_per_delivery >= ttl.payloads_per_delivery * 0.85,
        "flat comparator must not be cheaper: flat {} vs ttl {}",
        flat.payloads_per_delivery,
        ttl.payloads_per_delivery
    );
    assert!(
        ttl.mean_latency_ms() < flat.mean_latency_ms(),
        "ttl {} must beat flat {} at matched traffic",
        ttl.mean_latency_ms(),
        flat.mean_latency_ms()
    );
}

/// Ranked concentrates payload on hubs while regular nodes stay cheap.
#[test]
fn ranked_splits_cost_between_hubs_and_spokes() {
    let report = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        })
        .run();
    let low = report.payloads_per_delivery_low.expect("low series");
    let best = report.payloads_per_delivery_best.expect("best series");
    assert!(best > 2.0 * low, "hubs {best} vs spokes {low}");
    assert!(report.mean_delivery_fraction > 0.99, "{report}");
}

/// The protocol works unchanged on a 200-node overlay (the paper also
/// validates low-bandwidth configurations at 200 virtual nodes, §5.3).
#[test]
fn two_hundred_nodes_still_work() {
    let mut scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ttl { u: 2 });
    scenario.topology = egm_workload::TopologySource::Uniform {
        nodes: 200,
        lo_ms: 39.0,
        hi_ms: 60.0,
    };
    scenario.protocol.fanout = 11;
    scenario.protocol.rounds = 6;
    scenario.messages = 20;
    let report = scenario.run();
    assert_eq!(report.nodes, 200);
    assert!(report.mean_delivery_fraction > 0.99, "{report}");
}

/// Byte accounting matches §5.3 framing: 256-byte payloads + 24-byte
/// headers mean a payload packet is 280 bytes.
#[test]
fn byte_accounting_reflects_neem_framing() {
    let report = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .run();
    // All traffic in a pure-eager run is payload + shuffle control;
    // payload bytes alone are 280 × payload count.
    assert!(report.total_bytes >= report.total_payloads * 280);
    let payload_bytes = report.total_payloads * 280;
    let overhead = report.total_bytes - payload_bytes;
    assert!(
        overhead < report.total_bytes / 2,
        "control overhead should be a minority of bytes: {overhead} of {}",
        report.total_bytes
    );
}

/// Different seeds give different dynamics; the same seed reproduces the
/// run bit-for-bit (required for the paper's CI methodology to be
/// meaningful).
#[test]
fn determinism_and_seed_sensitivity() {
    let base = Scenario::smoke_test().with_strategy(StrategySpec::Ttl { u: 2 });
    let a = base.clone().run();
    let b = base.clone().run();
    assert_eq!(a, b);
    let c = base.with_seed(777).run();
    assert_ne!(a, c, "different seeds must differ somewhere");
}

/// Network loss delays but does not break dissemination: the scheduler's
/// periodic IWANT retries recover advertised-but-lost payloads.
#[test]
fn loss_is_recovered_by_retries() {
    let mut scenario = Scenario::smoke_test().with_strategy(StrategySpec::Flat { pi: 0.3 });
    scenario.loss = 0.05;
    scenario.drain_ms = 8000.0;
    let report = scenario.run();
    assert!(
        report.mean_delivery_fraction > 0.97,
        "5% loss should be absorbed: {report}"
    );
}

/// Jitter (reordering) does not break the protocol.
#[test]
fn jitter_is_tolerated() {
    let mut scenario = Scenario::smoke_test().with_strategy(StrategySpec::Ttl { u: 2 });
    scenario.jitter = 0.3;
    let report = scenario.run();
    assert!(report.mean_delivery_fraction > 0.99, "{report}");
}
