//! Integration tests for §6.3: fault injection and reliability.

use egm_core::StrategySpec;
use egm_workload::{FaultPlan, FaultSelection, Scenario};

fn scenario() -> Scenario {
    // Paper-like gossip parameters scaled down: fanout 6 over 24 nodes.
    Scenario::smoke_test()
}

/// With no failures, eager push delivers everything (the paper's "perfect
/// atomic delivery" baseline).
#[test]
fn no_failures_is_perfect() {
    let report = scenario()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .run();
    assert_eq!(report.mean_delivery_fraction, 1.0, "{report}");
}

/// Random failures of 20–40 % of nodes leave live-node delivery intact.
#[test]
fn random_failures_do_not_hurt_live_nodes() {
    for fraction in [0.2, 0.4] {
        let report = scenario()
            .with_strategy(StrategySpec::Flat { pi: 1.0 })
            .with_faults(Some(FaultPlan::new(fraction, FaultSelection::Random)))
            .run();
        assert!(
            report.mean_delivery_fraction > 0.97,
            "at {fraction}: {report}"
        );
    }
}

/// Killing the best-ranked nodes — the emergent hubs carrying most
/// payload — must not collapse reliability (the paper's Fig. 5(b)
/// headline).
#[test]
fn killing_the_hubs_is_survivable() {
    for fraction in [0.2, 0.4] {
        let report = scenario()
            .with_strategy(StrategySpec::Ranked { best_fraction: 0.2 })
            .with_faults(Some(FaultPlan::new(fraction, FaultSelection::BestRanked)))
            .run();
        assert!(
            report.mean_delivery_fraction > 0.95,
            "hub kill at {fraction}: {report}"
        );
    }
}

/// At extreme failure rates the protocol degrades (the paper observes
/// breakdown beyond 80 %): deliveries drop visibly below the no-failure
/// case.
#[test]
fn extreme_failures_finally_break_dissemination() {
    let mut s = scenario().with_strategy(StrategySpec::Flat { pi: 1.0 });
    s.topology = egm_workload::TopologySource::Uniform {
        nodes: 50,
        lo_ms: 39.0,
        hi_ms: 60.0,
    };
    let report = s
        .with_faults(Some(FaultPlan::new(0.85, FaultSelection::Random)))
        .run();
    assert!(
        report.mean_delivery_fraction < 0.95,
        "85% dead should visibly hurt: {report}"
    );
}

/// Victims are excluded from the delivery accounting but remain silenced
/// on the wire: payload volume per delivery stays in the eager regime.
#[test]
fn accounting_with_faults_stays_consistent() {
    let report = scenario()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_faults(Some(FaultPlan::new(0.25, FaultSelection::Random)))
        .run();
    // Senders keep pushing to dead peers (they cannot know), so traffic
    // per *live* delivery can even exceed the fanout.
    assert!(report.payloads_per_delivery > 3.0, "{report}");
    assert!(report.mean_delivery_fraction > 0.95, "{report}");
}
