//! Property-based tests over the full stack's invariants.

use egm_core::arena::MsgArena;
use egm_core::gossip::GossipLayer;
use egm_core::scheduler::{PayloadScheduler, RequestAction};
use egm_core::strategy::{Flat, StrategyCtx};
use egm_core::{MsgId, Payload, ProtocolConfig};
use egm_membership::{bootstrap_views, PartialView, ViewConfig};
use egm_metrics::summary::quantile;
use egm_metrics::{link, Summary};
use egm_rng::Rng;
use egm_simnet::{NodeId, SimDuration};
use egm_topology::TransitStubConfig;
use proptest::prelude::*;

proptest! {
    /// Generated topologies are connected: every pairwise latency is
    /// finite and symmetric, with a floor of two access links.
    #[test]
    fn topology_is_connected_and_symmetric(seed in 0u64..50, clients in 2usize..12) {
        let model = TransitStubConfig::small().with_clients(clients).with_seed(seed).build();
        for a in 0..clients {
            for b in 0..clients {
                let l = model.latency_ms(a, b);
                prop_assert!(l.is_finite());
                prop_assert_eq!(l, model.latency_ms(b, a));
                if a != b {
                    prop_assert!(l >= 2.0);
                }
            }
        }
    }

    /// The summary CI always contains the mean, and min ≤ mean ≤ max.
    #[test]
    fn summary_invariants(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let s = Summary::from_samples(&samples);
        prop_assert!(s.ci95_contains(s.mean));
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile(&samples, i as f64 / 20.0);
            prop_assert!(q >= last - 1e-12);
            last = q;
        }
        prop_assert_eq!(quantile(&samples, 0.0), samples.iter().copied().fold(f64::INFINITY, f64::min));
    }

    /// Top-fraction share is within [fraction-ish, 1] for non-zero
    /// traffic and the Gini coefficient stays in [0, 1).
    #[test]
    fn link_measures_are_bounded(counts in proptest::collection::vec(0u64..10_000, 1..300)) {
        let total: u64 = counts.iter().sum();
        let share = link::top_fraction_share(&counts, 0.05);
        let g = link::gini(&counts);
        if total == 0 {
            prop_assert_eq!(share, 0.0);
            prop_assert_eq!(g, 0.0);
        } else {
            prop_assert!(share > 0.0 && share <= 1.0);
            prop_assert!((0.0..1.0).contains(&g));
        }
    }

    /// PeerSample(f) never returns the owner, duplicates, or more than f
    /// peers, for any view composition.
    #[test]
    fn peer_sample_invariants(
        seed in 0u64..1000,
        n in 2usize..40,
        f in 1usize..20,
        capacity in 1usize..20,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let views = bootstrap_views(n, &ViewConfig { capacity, shuffle_size: 3 }, &mut rng);
        for (i, view) in views.iter().enumerate() {
            let sample = view.sample(&mut rng, f);
            prop_assert!(sample.len() <= f);
            prop_assert!(!sample.contains(&NodeId(i)));
            let mut dedup = sample.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), sample.len());
        }
    }

    /// Shuffle exchanges preserve view invariants under arbitrary
    /// interleavings.
    #[test]
    fn shuffle_preserves_view_invariants(
        seed in 0u64..500,
        rounds in 1usize..40,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let config = ViewConfig { capacity: 6, shuffle_size: 3 };
        let mut views = bootstrap_views(8, &config, &mut rng);
        for _ in 0..rounds {
            let initiator = rng.range_usize(0, 8);
            let started = {
                let view = &mut views[initiator];
                view.start_shuffle(&mut rng)
            };
            if let Some((partner, req)) = started {
                let reply = views[partner.index()].handle_shuffle(
                    &mut rng,
                    NodeId(initiator),
                    req,
                );
                if let Some((back, msg)) = reply {
                    views[back.index()].handle_shuffle(&mut rng, partner, msg);
                }
            }
            for (i, v) in views.iter().enumerate() {
                prop_assert!(v.len() <= 6);
                prop_assert!(!v.contains(NodeId(i)));
            }
        }
    }

    /// Gossip layer: no duplicate deliveries, fanout bounds, and round
    /// monotonicity for arbitrary receive sequences.
    #[test]
    fn gossip_never_delivers_twice(
        seed in 0u64..500,
        events in proptest::collection::vec((0u128..20, 0u32..8), 1..100),
    ) {
        let config = ProtocolConfig::default().with_fanout(4).with_rounds(5);
        let mut gossip = GossipLayer::new(&config);
        let mut arena = MsgArena::new(config.known_capacity, config.cache_capacity, false);
        let mut rng = Rng::seed_from_u64(seed);
        let mut view = PartialView::new(NodeId(0), ViewConfig { capacity: 8, shuffle_size: 3 });
        for i in 1..=8 {
            view.insert(NodeId(i));
        }
        let mut delivered = std::collections::HashSet::new();
        for (raw, round) in events {
            let id = MsgId::from_raw(raw);
            let slot = arena.intern(id);
            let step =
                gossip.on_l_receive(&mut rng, &view, &mut arena, slot, id, Payload { seq: 0, bytes: 1 }, round);
            if let Some(step) = step {
                prop_assert!(delivered.insert(id), "duplicate delivery of {id}");
                prop_assert!(step.sends.len() <= 4);
                for s in &step.sends {
                    prop_assert_eq!(s.round, round + 1);
                }
                if round >= 5 {
                    prop_assert!(step.sends.is_empty());
                }
            } else {
                prop_assert!(delivered.contains(&id));
            }
        }
    }

    /// Scheduler: a received payload is never requested afterwards; an
    /// advertised-but-missing payload is requested when its timer fires.
    #[test]
    fn scheduler_never_requests_received_payload(
        seed in 0u64..500,
        script in proptest::collection::vec((0u128..10, 0usize..3, prop::bool::ANY), 1..80),
    ) {
        let config = ProtocolConfig::default();
        let mut sched = PayloadScheduler::new(&config);
        let mut arena = MsgArena::new(config.known_capacity, config.cache_capacity, false);
        let mut strategy = Flat::new(0.0);
        let mut rng = Rng::seed_from_u64(seed);
        let monitor = egm_core::monitor::NullMonitor;
        for (raw, source, receive_payload) in script {
            let id = MsgId::from_raw(raw);
            let slot = arena.intern(id);
            if receive_payload {
                sched.on_msg(&mut arena, slot, Payload { seq: 0, bytes: 1 }, 1);
            } else {
                sched.on_ihave(&strategy, &mut arena, slot, NodeId(source));
            }
            // Fire the request timer: if the payload was received the
            // action must be Resolved, never a request.
            let mut ctx = StrategyCtx { me: NodeId(99), rng: &mut rng, monitor: &monitor };
            let action = sched.on_request_timer(&mut ctx, &mut strategy, &mut arena, slot);
            if arena.has_received(&id) {
                prop_assert_eq!(action, RequestAction::Resolved);
            } else {
                // The message is missing: a source must be asked.
                prop_assert!(matches!(action, RequestAction::Request(_, _)));
            }
        }
    }

    /// SimDuration arithmetic is consistent for arbitrary values.
    #[test]
    fn duration_arithmetic(ms_a in 0.0f64..1e6, ms_b in 0.0f64..1e6, k in 0.0f64..10.0) {
        let a = SimDuration::from_ms(ms_a);
        let b = SimDuration::from_ms(ms_b);
        let sum = a + b;
        prop_assert!((sum.as_ms() - (a.as_ms() + b.as_ms())).abs() < 1e-6);
        let scaled = a.mul_f64(k);
        prop_assert!((scaled.as_ms() - a.as_ms() * k).abs() < 0.001);
    }
}
