//! Integration tests for transient churn (extension): nodes repeatedly go
//! silent and return while messages flow.

use egm_core::StrategySpec;
use egm_workload::faults::ChurnPlan;
use egm_workload::Scenario;

/// Modest churn (one node down at a time for short spans) costs only a
/// small slice of deliveries: the down node misses what was disseminated
/// while it was out, everything else is untouched.
#[test]
fn modest_churn_barely_dents_reliability() {
    let report = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(60)
        .with_churn(Some(ChurnPlan::new(400.0, 300.0)))
        .run();
    assert!(
        report.mean_delivery_fraction > 0.90,
        "churn cost too much: {report}"
    );
    assert!(
        report.mean_delivery_fraction < 1.0,
        "churned nodes must actually miss something: {report}"
    );
}

/// Lazy push plus retries rides out churn better than its own window of
/// vulnerability suggests: advertised payloads are re-requested after the
/// node revives, as long as a source entry survived.
#[test]
fn lazy_push_with_retries_survives_churn() {
    let mut scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 0.0 })
        .with_messages(40)
        .with_churn(Some(ChurnPlan::new(500.0, 200.0)));
    scenario.drain_ms = 8000.0;
    let report = scenario.run();
    assert!(report.mean_delivery_fraction > 0.88, "{report}");
}

/// Churn interacts safely with permanent faults: both can be active in
/// the same run.
#[test]
fn churn_composes_with_permanent_faults() {
    use egm_workload::{FaultPlan, FaultSelection};
    let report = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        })
        .with_faults(Some(FaultPlan::new(0.2, FaultSelection::Random)))
        .with_churn(Some(ChurnPlan::new(500.0, 250.0)))
        .run();
    assert!(report.mean_delivery_fraction > 0.85, "{report}");
}

/// Churned runs are deterministic like everything else.
#[test]
fn churn_is_deterministic() {
    let scenario = Scenario::smoke_test()
        .with_strategy(StrategySpec::Ttl { u: 2 })
        .with_churn(Some(ChurnPlan::new(300.0, 200.0)));
    assert_eq!(scenario.run(), scenario.run());
}
