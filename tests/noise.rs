//! Integration tests for §4.3/§6.5: traffic-preserving noise injection.

use egm_core::{MonitorSpec, StrategySpec};
use egm_workload::{calibrate, NoiseConfig, Scenario};

fn ranked_scenario() -> Scenario {
    Scenario::smoke_test()
        .with_strategy(StrategySpec::Ranked {
            best_fraction: 0.25,
        })
        .with_monitor(MonitorSpec::OracleLatency)
}

/// Full noise erases the strategy: the per-node payload contribution of
/// regular nodes converges to the overall average (Fig. 6(a)).
#[test]
fn full_noise_equalizes_group_contributions() {
    let base = ranked_scenario();
    let c = calibrate::eager_rate(&base, None);
    let clean = base.clone().run();
    let noisy = base.with_noise(Some(NoiseConfig { o: 1.0, c })).run();

    let clean_low = clean.payloads_per_delivery_low.expect("group series");
    let clean_best = clean.payloads_per_delivery_best.expect("group series");
    let noisy_low = noisy.payloads_per_delivery_low.expect("group series");
    let noisy_best = noisy.payloads_per_delivery_best.expect("group series");

    assert!(clean_best > 2.0 * clean_low, "structure before noise");
    assert!(
        noisy_best < 1.3 * noisy_low,
        "structure must be erased: best {noisy_best} vs low {noisy_low}"
    );
}

/// Noise preserves the total amount of eager traffic (the calibration
/// property of §4.3).
#[test]
fn noise_preserves_total_traffic() {
    let base = ranked_scenario();
    let c = calibrate::eager_rate(&base, None);
    let clean = base.clone().run();
    for o in [0.5, 1.0] {
        let noisy = base.clone().with_noise(Some(NoiseConfig { o, c })).run();
        let ratio = noisy.payloads_per_delivery / clean.payloads_per_delivery;
        assert!(
            (0.75..=1.35).contains(&ratio),
            "traffic drifted by {ratio} at noise {o}"
        );
    }
}

/// Noise never endangers correctness: delivery stays reliable at every
/// ratio (the paper: "worst case ... performance is bounded by the
/// original pure lazy or eager push protocols").
#[test]
fn noise_never_breaks_delivery() {
    let base = ranked_scenario();
    let c = calibrate::eager_rate(&base, None);
    for o in [0.25, 0.75, 1.0] {
        let report = base.clone().with_noise(Some(NoiseConfig { o, c })).run();
        assert!(report.mean_delivery_fraction > 0.99, "noise {o}: {report}");
    }
}

/// Structure (top-5 % link share) decays monotonically-ish with noise and
/// approaches the unstructured baseline (Fig. 6(c)).
#[test]
fn structure_decays_toward_uniform() {
    let base = ranked_scenario();
    let c = calibrate::eager_rate(&base, None);
    let clean = base.clone().run();
    let noisy = base.with_noise(Some(NoiseConfig { o: 1.0, c })).run();
    assert!(
        noisy.top5_link_share < clean.top5_link_share,
        "top-5% share must shrink: {} -> {}",
        clean.top5_link_share,
        noisy.top5_link_share
    );
    assert!(
        noisy.node_gini < clean.node_gini,
        "node load skew must shrink"
    );
}
