//! Integration tests for the Adaptive strategy extension: nodes tune
//! their eagerness from local duplicate feedback alone.

use egm_core::StrategySpec;
use egm_workload::Scenario;

fn adaptive(initial_pi: f64, target: f64) -> Scenario {
    Scenario::smoke_test().with_strategy(StrategySpec::Adaptive {
        initial_pi,
        target_duplicate_ratio: target,
    })
}

/// With a tight redundancy budget, the swarm settles well below pure
/// eager traffic while keeping delivery intact.
#[test]
fn tight_budget_cuts_traffic_without_losing_messages() {
    let eager = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 1.0 })
        .with_messages(60)
        .run();
    let tuned = adaptive(1.0, 0.2).with_messages(60).run();
    assert!(
        tuned.payloads_per_delivery < 0.7 * eager.payloads_per_delivery,
        "adaptive {} vs eager {}",
        tuned.payloads_per_delivery,
        eager.payloads_per_delivery
    );
    assert!(tuned.mean_delivery_fraction > 0.99, "{tuned}");
}

/// A permissive budget keeps traffic near the eager regime: adaptation
/// reacts to the observed ratio, not to a fixed setpoint of pi.
#[test]
fn loose_budget_stays_eager() {
    let loose = adaptive(1.0, 0.95).with_messages(60).run();
    assert!(
        loose.payloads_per_delivery > 3.5,
        "loose budget should stay close to eager: {loose}"
    );
    assert!(loose.mean_delivery_fraction > 0.99, "{loose}");
}

/// Starting lazy, nodes ramp eagerness up toward the budget rather than
/// staying at the slow floor.
#[test]
fn adaptation_works_upward_too() {
    let from_lazy = adaptive(0.0, 0.5).with_messages(80).run();
    let pure_lazy = Scenario::smoke_test()
        .with_strategy(StrategySpec::Flat { pi: 0.0 })
        .with_messages(80)
        .run();
    assert!(
        from_lazy.payloads_per_delivery > pure_lazy.payloads_per_delivery + 0.3,
        "adaptive-from-lazy {} should exceed pure lazy {}",
        from_lazy.payloads_per_delivery,
        pure_lazy.payloads_per_delivery
    );
    assert!(from_lazy.mean_delivery_fraction > 0.99, "{from_lazy}");
}

/// Adaptation is deterministic under a fixed seed, like everything else.
#[test]
fn adaptive_runs_are_reproducible() {
    let a = adaptive(1.0, 0.3).run();
    let b = adaptive(1.0, 0.3).run();
    assert_eq!(a, b);
}
