//! Minimal offline stand-in for `rayon`'s parallel-iterator API.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of rayon used by the workspace —
//! `vec.into_par_iter().map(f).collect()` — on top of `std::thread::scope`.
//! Work is distributed over an atomic index (dynamic load balancing, like
//! rayon's work stealing at the granularity this workspace needs), and
//! results are written back by input index, so `collect()` preserves input
//! order exactly: a parallel map is observationally identical to the
//! sequential `iter().map().collect()`.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be capped with the `RAYON_NUM_THREADS` environment variable (same knob
//! as real rayon). With one available core the map runs inline on the
//! caller thread — no spawn overhead, still identical results.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::IntoParallelIterator;
}

/// Number of worker threads a parallel map will use.
///
/// Honours `RAYON_NUM_THREADS` when set to a positive integer, otherwise
/// the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator` for the supported types.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// Parallel iterator over an owned `Vec`.
#[derive(Debug)]
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecParIter<T> {
    /// Maps each element through `f`, preserving input order.
    pub fn map<R, F>(self, f: F) -> MapParIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        MapParIter {
            items: self.items,
            f,
        }
    }
}

/// The result of [`VecParIter::map`], awaiting a `collect`.
#[derive(Debug)]
pub struct MapParIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapParIter<T, F> {
    /// Executes the map across threads and collects results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map(self.items, &self.f).into_iter().collect()
    }
}

/// Order-preserving parallel map over a vector.
fn par_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each input slot is taken exactly once (atomic cursor) and each
    // output slot is written exactly once; per-slot mutexes are
    // uncontended and exist only to satisfy safe-Rust sharing.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work slot taken twice");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker panicked before producing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x).collect();
        let got: Vec<u64> = input.into_par_iter().map(|x| x * x).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let got: Vec<u32> = empty.into_par_iter().map(|x| x + 1).collect();
        assert!(got.is_empty());
        let one: Vec<u32> = vec![41].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
