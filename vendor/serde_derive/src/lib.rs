//! Derive macros for the vendored serde stand-in.
//!
//! The derives emit empty `impl serde::Serialize` / `impl serde::Deserialize`
//! blocks for the annotated type. Only plain (non-generic) structs and
//! enums are supported, which covers every derived type in this
//! workspace; a generic type produces a compile error pointing here.

#![forbid(unsafe_code)]

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive was attached to, rejecting
/// generic types (the stub cannot forward their bounds without a full
/// parser).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            panic!("serde stub derive: expected a type name after `{kw}`");
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            assert!(
                p.as_char() != '<',
                "serde stub derive: generic type `{name}` is not supported \
                 (see vendor/serde_derive)"
            );
        }
        return name.to_string();
    }
    panic!("serde stub derive: no struct/enum/union found in input");
}

/// Stand-in for `#[derive(serde::Serialize)]`: emits an empty marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

/// Stand-in for `#[derive(serde::Deserialize)]`: emits an empty marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
