//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of proptest used by the workspace's property
//! tests: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`
//! / `prop_assert_eq!`, range and tuple strategies, `collection::vec`,
//! and `prop::bool::ANY`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case number and message, and cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! exactly across runs. `PROPTEST_CASES` overrides the case count.

#![forbid(unsafe_code)]

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolves the effective case count (`PROPTEST_CASES` wins).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 48 keeps the debug-profile test
        // suite fast while still exploring the input space.
        ProptestConfig { cases: 48 }
    }
}

/// A failed property, carried back to the harness by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case generator (SplitMix64 over a seed derived from the
/// test name).
#[derive(Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates the RNG for a named test; the same name always yields the
    /// same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` (without
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end - self.start;
                self.start + (rng.next_u64() as $t).rem_euclid(span)
            }
        }
    )*};
}
int_range_strategy!(u32, u64, usize, u128);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Property-test harness macro, mirroring `proptest::proptest!`.
///
/// Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` followed by any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.effective_cases() {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!("property failed on case {case}: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{:?} != {:?} ({} vs {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, x in -2.0f64..4.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..4.5).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (0u32..5, prop::bool::ANY),
            items in prop::collection::vec(0u64..100, 2..6),
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!(items.len() >= 2 && items.len() < 6);
            prop_assert!(items.iter().all(|&v| v < 100));
        }
    }

    #[test]
    fn same_test_name_reproduces_sequence() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let left: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(left, right);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
