//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion's API used by `egm_bench`: `Criterion`,
//! benchmark groups, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! times `sample_size` batches with `std::time::Instant` and prints
//! min/mean per iteration. `EGM_BENCH_SAMPLES` overrides the sample count
//! (useful to keep CI smoke runs short).

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::Instant;

/// Entry point handed to benchmark functions, mirroring
/// `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named group of timed functions.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each `bench_function` records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one function and prints its per-iteration statistics.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = std::env::var("EGM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.sample_size)
            .max(1);
        let mut bencher = Bencher {
            times_ns: Vec::with_capacity(samples),
            samples,
        };
        f(&mut bencher);
        let times = &bencher.times_ns;
        if times.is_empty() {
            println!("{}/{id}: no samples recorded", self.name);
            return self;
        }
        let min = *times.iter().min().expect("non-empty") as f64 / 1e6;
        let mean = times.iter().sum::<u128>() as f64 / times.len() as f64 / 1e6;
        println!(
            "{}/{id}: mean {mean:.3} ms/iter, min {min:.3} ms/iter ({} samples)",
            self.name,
            times.len()
        );
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Times closures; mirrors `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    times_ns: Vec<u128>,
    samples: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `samples` timed iterations.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times_ns.push(start.elapsed().as_nanos());
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn group_times_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counts_iterations", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
