//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io,
//! so the workspace vendors an API-skeleton that satisfies the
//! `use serde::{Deserialize, Serialize}` + `#[derive(...)]` surface the
//! codebase actually uses. No code in the workspace serializes through
//! serde today (reports are rendered as text tables and hand-written
//! JSON); the traits are therefore empty markers and the derives emit
//! empty impls. Replacing this stub with real serde is a one-line change
//! in the workspace manifest and requires no source edits.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
///
/// Carries no methods: nothing in this workspace drives a serializer
/// through the trait. Deriving it asserts "this type is plain data and
/// would be serializable", which keeps the codebase ready for the real
/// crate.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
